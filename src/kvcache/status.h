/**
 * @file
 * Status codes for KV-cache offload/fetch operations.
 *
 * The tiered path has real failure modes — hot-pool exhaustion, injected
 * or modeled transfer failures, checksum mismatches, payload dropped
 * under capacity pressure — and a bare bool collapses them into one bit
 * the caller cannot act on. Every offload/fetch edge now reports *why*
 * it stopped, so the engine can pick the right recovery (retry with
 * backoff, free pages and re-fetch, or recompute from seeds) instead of
 * guessing.
 */
#ifndef BITDEC_KVCACHE_STATUS_H
#define BITDEC_KVCACHE_STATUS_H

namespace bitdec::kv {

/** Why an offload/fetch operation stopped. */
enum class CacheStatus
{
    Ok,                 //!< completed (possibly a no-op)
    HotPoolExhausted,   //!< no free hot page; caller frees pages, retries
    TransientFault,     //!< transfer failed/timed out; retry with backoff
    CorruptionDetected, //!< checksum mismatch; payload unusable, recompute
    ContentLost,        //!< cold payload was dropped earlier; recompute
    NotTracked,         //!< the pool holds no state for the sequence
    Disabled,           //!< no cold tier configured
};

/** Returns a printable status name. */
constexpr const char*
toString(CacheStatus status)
{
    switch (status) {
      case CacheStatus::Ok:
        return "ok";
      case CacheStatus::HotPoolExhausted:
        return "hot-pool-exhausted";
      case CacheStatus::TransientFault:
        return "transient-fault";
      case CacheStatus::CorruptionDetected:
        return "corruption-detected";
      case CacheStatus::ContentLost:
        return "content-lost";
      case CacheStatus::NotTracked:
        return "not-tracked";
      case CacheStatus::Disabled:
        return "disabled";
    }
    return "unknown";
}

} // namespace bitdec::kv

#endif // BITDEC_KVCACHE_STATUS_H
