/**
 * @file
 * KV-cache containers: full-precision, packed low-bit with residual
 * partition, and the byte-accounting both feed into the timing model.
 *
 * The functional containers operate per KV head: a cache is a growing
 * [len x head_dim] matrix for K and V. BitDecoding partitions it as
 * X = Xpack ∪ Xres (Section V-B): all full residual blocks are quantized
 * and packed; the tail (< Nr tokens) stays in half precision and is
 * re-processed each step until it fills a block.
 */
#ifndef BITDEC_KVCACHE_KV_CACHE_H
#define BITDEC_KVCACHE_KV_CACHE_H

#include <cstdint>
#include <vector>

#include "common/half.h"
#include "common/tensor.h"
#include "exec/dequant_plan.h"
#include "exec/simd/dequant_linear.h"
#include "layout/induced_layout.h"
#include "layout/tile.h"
#include "quant/int_quant.h"
#include "quant/quant_params.h"

namespace bitdec::kv {

/** Growing FP16 K/V store for one head (the FlashDecoding baseline view). */
class Fp16HeadCache
{
  public:
    /** @param head_dim per-head hidden size d */
    explicit Fp16HeadCache(int head_dim);

    /** Appends one token's key and value vectors (length head_dim). */
    void append(const std::vector<Half>& k, const std::vector<Half>& v);

    /** Tokens currently cached. */
    int length() const { return len_; }

    /** Per-head hidden size. */
    int headDim() const { return head_dim_; }

    /** Key matrix view [len x d]. */
    const Tensor<Half>& keys() const { return k_; }

    /** Value matrix view [len x d]. */
    const Tensor<Half>& values() const { return v_; }

    /** Bytes this cache occupies in device memory. */
    double deviceBytes() const;

  private:
    void grow(int needed);

    int head_dim_;
    int len_ = 0;
    int cap_ = 0;
    Tensor<Half> k_;
    Tensor<Half> v_;
};

/** One quantized+packed residual block of K or V. */
struct PackedBlock
{
    std::vector<std::uint32_t> units; //!< induced-layout packed words
    Tensor<Half2> params;             //!< per-group scale/zero metadata

    /**
     * Host-side acceleration table: the 2^bits dequantized values of every
     * parameter group, [group * 2^bits + code], built at pack time with the
     * magic-FMA arithmetic (quant::dequantMagicValue). Values are stored as
     * Half — lossless, since magic-FMA results are Half-rounded by
     * construction — so the table stays at half the size of an FP16 cache;
     * the fused path widens through the global Half LUT at use. Not counted
     * in deviceBytes() — the device dequantizes in registers; this is the
     * CPU backend's way of making per-element dequant a pair of loads.
     */
    std::vector<Half> dequant_lut;

    /** Widened (float) mirror of dequant_lut for the SIMD dequant kernel,
     *  whose gathered lookup wants 32-bit lanes. Same indexing
     *  ((group << bits) | code); values bit-identical to widening
     *  dequant_lut at use. */
    std::vector<float> dequant_lut_f32;
};

/**
 * BitDecoding's partitioned low-bit cache for one head.
 *
 * Tokens enter the FP16 residual buffer; every time the residual reaches
 * Nr tokens the block is handed to the Residual Kernel path: quantized
 * (key granularity per config, values tensor-wise), packed through the
 * induced layout, and appended to the packed region.
 */
class PackedHeadCache
{
  public:
    /**
     * @param head_dim   per-head hidden size d
     * @param config     bit width / granularity / group size
     * @param tiling     warp tiling that induces the packing layout
     */
    PackedHeadCache(int head_dim, const quant::QuantConfig& config,
                    const layout::WarpTiling& tiling);

    /** Appends one token; may trigger packing of a full residual block. */
    void append(const std::vector<Half>& k, const std::vector<Half>& v);

    /** Bulk-loads a prefill context, packing all complete blocks. */
    void prefill(const Tensor<Half>& k, const Tensor<Half>& v);

    /** Total tokens (packed + residual). */
    int length() const { return packed_tokens_ + res_len_; }

    /** Tokens in the packed low-bit region (Npack). */
    int packedTokens() const { return packed_tokens_; }

    /** Tokens in the FP16 residual buffer (res_len). */
    int residualLength() const { return res_len_; }

    /** Residual block capacity Nr from Eq. 1. */
    int residualBlockSize() const { return nr_; }

    /** Packed key blocks, oldest first. */
    const std::vector<PackedBlock>& keyBlocks() const { return k_blocks_; }

    /** Packed value blocks, oldest first. */
    const std::vector<PackedBlock>& valueBlocks() const { return v_blocks_; }

    /** Residual FP16 keys, [Nr x d]; only the first res_len rows are live. */
    const Tensor<Half>& residualKeys() const { return k_res_; }

    /** Residual FP16 values. */
    const Tensor<Half>& residualValues() const { return v_res_; }

    /** Layout used to pack key blocks (B operand of QK^T: d x Nr). */
    const layout::InducedLayout& keyLayout() const { return k_layout_; }

    /** Layout used to pack value blocks (B operand of PV: Nr x d). */
    const layout::InducedLayout& valueLayout() const { return v_layout_; }

    /** Quantization configuration. */
    const quant::QuantConfig& config() const { return config_; }

    /** Warp tiling. */
    const layout::WarpTiling& tiling() const { return tiling_; }

    /** Per-head hidden size. */
    int headDim() const { return head_dim_; }

    /**
     * Dequant routing for key blocks: scratch destinations index a
     * token-major [Nr x d] tile. Shared by all blocks of this cache.
     */
    const std::vector<exec::CodeRoute>& keyRoutes() const { return k_routes_; }

    /** Dequant routing for value blocks (token-major [Nr x d] scratch). */
    const std::vector<exec::CodeRoute>&
    valueRoutes() const
    {
        return v_routes_;
    }

    /**
     * Dest-ordered (SoA) inversion of keyRoutes() for the SIMD dequant
     * kernel, remapped to a channel-major [d x Nr] scratch tile — the
     * layout the vector QK loop reads, so packed keys dequantize straight
     * into it with no transpose pass.
     */
    const exec::simd::LinearDequantPlan&
    keyLinearPlan() const
    {
        return k_linear_;
    }

    /** SoA inversion of valueRoutes() (token-major [Nr x d], as scalar). */
    const exec::simd::LinearDequantPlan&
    valueLinearPlan() const
    {
        return v_linear_;
    }

    /** Device bytes: packed words + metadata + residual. */
    double deviceBytes() const;

    /** Metadata bytes only (scales/zeros), for traffic accounting. */
    double metadataBytes() const;

    /**
     * Reference dequantization of the full cache back to [len x d]
     * matrices; used by tests to bound end-to-end quantization error.
     */
    void dequantizeAll(Tensor<Half>& k_out, Tensor<Half>& v_out) const;

  private:
    void packResidual();

    int head_dim_;
    quant::QuantConfig config_;
    layout::WarpTiling tiling_;
    int nr_;

    layout::InducedLayout k_layout_; //!< for one block: [d x Nr]
    layout::InducedLayout v_layout_; //!< for one block: [Nr x d]

    std::vector<exec::CodeRoute> k_routes_; //!< shared key dequant routing
    std::vector<exec::CodeRoute> v_routes_; //!< shared value dequant routing

    exec::simd::LinearDequantPlan k_linear_; //!< SoA keys, channel-major
    exec::simd::LinearDequantPlan v_linear_; //!< SoA values, token-major

    std::vector<PackedBlock> k_blocks_;
    std::vector<PackedBlock> v_blocks_;
    int packed_tokens_ = 0;

    Tensor<Half> k_res_; //!< [Nr x d]
    Tensor<Half> v_res_;
    int res_len_ = 0;
};

/**
 * Quantizes one residual block (k_block [Nr x d], v_block [Nr x d]) the way
 * the Residual Kernel does and packs it through the induced layouts.
 * Exposed for tests and for the Residual Kernel implementation.
 *
 * Keys are packed as the B operand of Q*K^T, i.e. transposed to [d x Nr];
 * values as the B operand of P*V, i.e. [Nr x d].
 */
void packBlock(const Tensor<Half>& k_block, const Tensor<Half>& v_block,
               const quant::QuantConfig& config,
               const layout::InducedLayout& k_layout,
               const layout::InducedLayout& v_layout, PackedBlock& k_out,
               PackedBlock& v_out);

} // namespace bitdec::kv

#endif // BITDEC_KVCACHE_KV_CACHE_H
