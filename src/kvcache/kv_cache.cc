#include "kvcache/kv_cache.h"

#include <algorithm>

#include "common/logging.h"
#include "quant/fast_dequant.h"

namespace bitdec::kv {

namespace {

/** Transposes a [rows x cols] half matrix. */
Tensor<std::uint8_t>
transposeCodes(const Tensor<std::uint8_t>& m)
{
    Tensor<std::uint8_t> out({m.dim(1), m.dim(0)});
    for (std::size_t r = 0; r < m.dim(0); r++)
        for (std::size_t c = 0; c < m.dim(1); c++)
            out.at(c, r) = m.at(r, c);
    return out;
}

/**
 * Builds a block's per-group dequantized-value table: for every parameter
 * group (flat order of the params tensor) the 2^bits values the magic-FMA
 * fast path produces. One table lookup then replaces the per-element
 * dequantization on the CPU hot path, bit-exactly.
 */
/** Fills the block's float mirror of dequant_lut (same indexing, values
 *  widened through the global Half LUT — bit-identical at use). */
void
widenDequantLut(kv::PackedBlock& blk)
{
    blk.dequant_lut_f32.resize(blk.dequant_lut.size());
    toFloat(blk.dequant_lut.data(), blk.dequant_lut_f32.data(),
            blk.dequant_lut.size());
}

std::vector<Half>
buildDequantLut(const Tensor<Half2>& params, int bits)
{
    const int levels = 1 << bits;
    std::vector<Half> lut(params.numel() * static_cast<std::size_t>(levels));
    for (std::size_t g = 0; g < params.numel(); g++) {
        const quant::QuantParams p = quant::QuantParams::fromHalf2(params[g]);
        for (int q = 0; q < levels; q++) {
            // dequantMagicValue is Half-rounded by construction, so the
            // narrowing store is lossless.
            lut[g * static_cast<std::size_t>(levels) +
                static_cast<std::size_t>(q)] =
                Half(quant::dequantMagicValue(static_cast<std::uint8_t>(q),
                                              p));
        }
    }
    return lut;
}

} // namespace

Fp16HeadCache::Fp16HeadCache(int head_dim) : head_dim_(head_dim)
{
    BITDEC_ASSERT(head_dim > 0, "head_dim must be positive");
}

void
Fp16HeadCache::grow(int needed)
{
    if (needed <= cap_)
        return;
    int new_cap = std::max(cap_ * 2, 64);
    while (new_cap < needed)
        new_cap *= 2;
    Tensor<Half> nk({static_cast<std::size_t>(new_cap),
                     static_cast<std::size_t>(head_dim_)});
    Tensor<Half> nv({static_cast<std::size_t>(new_cap),
                     static_cast<std::size_t>(head_dim_)});
    for (int t = 0; t < len_; t++) {
        for (int d = 0; d < head_dim_; d++) {
            nk.at(static_cast<std::size_t>(t), static_cast<std::size_t>(d)) =
                k_.at(static_cast<std::size_t>(t), static_cast<std::size_t>(d));
            nv.at(static_cast<std::size_t>(t), static_cast<std::size_t>(d)) =
                v_.at(static_cast<std::size_t>(t), static_cast<std::size_t>(d));
        }
    }
    k_ = std::move(nk);
    v_ = std::move(nv);
    cap_ = new_cap;
}

void
Fp16HeadCache::append(const std::vector<Half>& k, const std::vector<Half>& v)
{
    BITDEC_ASSERT(static_cast<int>(k.size()) == head_dim_ &&
                  static_cast<int>(v.size()) == head_dim_,
                  "K/V vector length must equal head_dim");
    grow(len_ + 1);
    for (int d = 0; d < head_dim_; d++) {
        k_.at(static_cast<std::size_t>(len_), static_cast<std::size_t>(d)) =
            k[static_cast<std::size_t>(d)];
        v_.at(static_cast<std::size_t>(len_), static_cast<std::size_t>(d)) =
            v[static_cast<std::size_t>(d)];
    }
    len_++;
}

double
Fp16HeadCache::deviceBytes() const
{
    return 2.0 * len_ * head_dim_ * 2.0; // K and V, 2 bytes per half
}

PackedHeadCache::PackedHeadCache(int head_dim, const quant::QuantConfig& config,
                                 const layout::WarpTiling& tiling)
    : head_dim_(head_dim),
      config_(config),
      tiling_(tiling),
      nr_(layout::residualBlockSize(tiling, config.bits)),
      k_layout_(tiling, config.bits, head_dim, nr_),
      v_layout_(tiling, config.bits, nr_, head_dim),
      k_res_({static_cast<std::size_t>(nr_), static_cast<std::size_t>(head_dim)}),
      v_res_({static_cast<std::size_t>(nr_), static_cast<std::size_t>(head_dim)})
{
    BITDEC_ASSERT(head_dim % tiling.pk() == 0,
                  "head_dim must be a multiple of the MMA K extent");
    BITDEC_ASSERT(nr_ % tiling.pk() == 0,
                  "residual block must be a multiple of the MMA K extent");

    // Dequant routing shared by every block: both K and V land in a
    // token-major [Nr x d] scratch tile; the parameter-group indices match
    // the flat order of the blocks' params tensors (and the dequant_lut
    // built at pack time).
    const std::uint32_t d = static_cast<std::uint32_t>(head_dim);
    const std::uint32_t gs = static_cast<std::uint32_t>(config.group_size);
    // Keys pack transposed ([d x Nr]): row = channel, col = token.
    const auto k_dest = [d](int row, int col) {
        return static_cast<std::uint32_t>(col) * d +
               static_cast<std::uint32_t>(row);
    };
    const auto k_param =
        config.key_granularity == quant::Granularity::TensorWise
            ? std::function<std::uint32_t(int, int)>(
                  [d, gs](int row, int col) {
                      // params [Nr x d/gs] at (token, channel/gs)
                      return static_cast<std::uint32_t>(col) * (d / gs) +
                             static_cast<std::uint32_t>(row) / gs;
                  })
            : std::function<std::uint32_t(int, int)>(
                  [d, gs](int row, int col) {
                      // params [Nr/gs x d] at (token/gs, channel)
                      return (static_cast<std::uint32_t>(col) / gs) * d +
                             static_cast<std::uint32_t>(row);
                  });
    k_routes_ = exec::buildDequantRoutes(k_layout_, k_dest, k_param);
    // Values pack natural ([Nr x d]): row = token, col = channel;
    // params are always tensor-wise, [Nr x d/gs] at (token, channel/gs).
    const auto v_dest = [d](int row, int col) {
        return static_cast<std::uint32_t>(row) * d +
               static_cast<std::uint32_t>(col);
    };
    const auto v_param = [d, gs](int row, int col) {
        return static_cast<std::uint32_t>(row) * (d / gs) +
               static_cast<std::uint32_t>(col) / gs;
    };
    v_routes_ = exec::buildDequantRoutes(v_layout_, v_dest, v_param);

    // SoA plans for the SIMD dequant kernel. The key plan remaps every
    // token-major destination t*d+c to the channel-major slot c*Nr+t, so
    // the vector path dequantizes keys directly into QK's preferred layout.
    const std::size_t n_elems =
        static_cast<std::size_t>(nr_) * static_cast<std::size_t>(head_dim);
    const std::uint32_t du = static_cast<std::uint32_t>(head_dim);
    const std::uint32_t nru = static_cast<std::uint32_t>(nr_);
    k_linear_ = exec::simd::buildLinearDequantPlan(
        k_routes_, config.bits, n_elems,
        [du, nru](std::uint32_t dest) { return (dest % du) * nru + dest / du; });
    v_linear_ = exec::simd::buildLinearDequantPlan(v_routes_, config.bits,
                                                   n_elems);
}

void
PackedHeadCache::append(const std::vector<Half>& k, const std::vector<Half>& v)
{
    BITDEC_ASSERT(static_cast<int>(k.size()) == head_dim_ &&
                  static_cast<int>(v.size()) == head_dim_,
                  "K/V vector length must equal head_dim");
    for (int d = 0; d < head_dim_; d++) {
        k_res_.at(static_cast<std::size_t>(res_len_),
                  static_cast<std::size_t>(d)) = k[static_cast<std::size_t>(d)];
        v_res_.at(static_cast<std::size_t>(res_len_),
                  static_cast<std::size_t>(d)) = v[static_cast<std::size_t>(d)];
    }
    res_len_++;
    if (res_len_ == nr_)
        packResidual();
}

void
PackedHeadCache::prefill(const Tensor<Half>& k, const Tensor<Half>& v)
{
    BITDEC_ASSERT(k.rank() == 2 && v.rank() == 2 && k.dim(0) == v.dim(0) &&
                  static_cast<int>(k.dim(1)) == head_dim_ &&
                  static_cast<int>(v.dim(1)) == head_dim_,
                  "prefill tensors must be [len x head_dim]");
    std::vector<Half> kv(static_cast<std::size_t>(head_dim_));
    std::vector<Half> vv(static_cast<std::size_t>(head_dim_));
    for (std::size_t t = 0; t < k.dim(0); t++) {
        for (int d = 0; d < head_dim_; d++) {
            kv[static_cast<std::size_t>(d)] =
                k.at(t, static_cast<std::size_t>(d));
            vv[static_cast<std::size_t>(d)] =
                v.at(t, static_cast<std::size_t>(d));
        }
        append(kv, vv);
    }
}

void
PackedHeadCache::packResidual()
{
    PackedBlock kb, vb;
    packBlock(k_res_, v_res_, config_, k_layout_, v_layout_, kb, vb);
    k_blocks_.push_back(std::move(kb));
    v_blocks_.push_back(std::move(vb));
    packed_tokens_ += nr_;
    res_len_ = 0;
}

double
PackedHeadCache::deviceBytes() const
{
    double bytes = 0;
    for (const auto& b : k_blocks_)
        bytes += b.units.size() * 4.0 + b.params.numel() * 4.0;
    for (const auto& b : v_blocks_)
        bytes += b.units.size() * 4.0 + b.params.numel() * 4.0;
    bytes += 2.0 * nr_ * head_dim_ * 2.0; // residual K and V buffers
    return bytes;
}

double
PackedHeadCache::metadataBytes() const
{
    double bytes = 0;
    for (const auto& b : k_blocks_)
        bytes += b.params.numel() * 4.0;
    for (const auto& b : v_blocks_)
        bytes += b.params.numel() * 4.0;
    return bytes;
}

void
PackedHeadCache::dequantizeAll(Tensor<Half>& k_out, Tensor<Half>& v_out) const
{
    const int len = length();
    k_out.reset({static_cast<std::size_t>(len),
                 static_cast<std::size_t>(head_dim_)});
    v_out.reset({static_cast<std::size_t>(len),
                 static_cast<std::size_t>(head_dim_)});

    for (std::size_t blk = 0; blk < k_blocks_.size(); blk++) {
        // Keys were packed transposed ([d x Nr]); params stay in K-natural
        // (token, channel) indexing.
        const Tensor<std::uint8_t> kc =
            unpackInduced(k_layout_, k_blocks_[blk].units);
        const Tensor<std::uint8_t> vc =
            unpackInduced(v_layout_, v_blocks_[blk].units);
        for (int t = 0; t < nr_; t++) {
            const std::size_t tok = blk * static_cast<std::size_t>(nr_) +
                                    static_cast<std::size_t>(t);
            for (int d = 0; d < head_dim_; d++) {
                // Key params: granularity per config over [Nr x d].
                quant::QuantParams kp;
                if (config_.key_granularity ==
                    quant::Granularity::TensorWise) {
                    kp = quant::QuantParams::fromHalf2(
                        k_blocks_[blk].params.at(
                            static_cast<std::size_t>(t),
                            static_cast<std::size_t>(d / config_.group_size)));
                } else {
                    kp = quant::QuantParams::fromHalf2(
                        k_blocks_[blk].params.at(
                            static_cast<std::size_t>(t / config_.group_size),
                            static_cast<std::size_t>(d)));
                }
                const quant::QuantParams vp = quant::QuantParams::fromHalf2(
                    v_blocks_[blk].params.at(
                        static_cast<std::size_t>(t),
                        static_cast<std::size_t>(d / config_.group_size)));
                // Magic-folded arithmetic: what the Packing Kernel's lop3
                // fast path computes on device.
                k_out.at(tok, static_cast<std::size_t>(d)) =
                    Half(quant::dequantMagicValue(
                        kc.at(static_cast<std::size_t>(d),
                              static_cast<std::size_t>(t)),
                        kp));
                v_out.at(tok, static_cast<std::size_t>(d)) =
                    Half(quant::dequantMagicValue(
                        vc.at(static_cast<std::size_t>(t),
                              static_cast<std::size_t>(d)),
                        vp));
            }
        }
    }
    for (int t = 0; t < res_len_; t++) {
        const std::size_t tok =
            static_cast<std::size_t>(packed_tokens_ + t);
        for (int d = 0; d < head_dim_; d++) {
            k_out.at(tok, static_cast<std::size_t>(d)) =
                k_res_.at(static_cast<std::size_t>(t),
                          static_cast<std::size_t>(d));
            v_out.at(tok, static_cast<std::size_t>(d)) =
                v_res_.at(static_cast<std::size_t>(t),
                          static_cast<std::size_t>(d));
        }
    }
}

void
packBlock(const Tensor<Half>& k_block, const Tensor<Half>& v_block,
          const quant::QuantConfig& config,
          const layout::InducedLayout& k_layout,
          const layout::InducedLayout& v_layout, PackedBlock& k_out,
          PackedBlock& v_out)
{
    // Quantize in K-natural [Nr x d] coordinates. TensorWise groups run
    // along the hidden dimension, ChannelWise along the token dimension.
    const quant::QuantizedMatrix kq = quant::quantizeMatrix(
        k_block, config.bits, config.key_granularity, config.group_size);
    // Values always use tensor-wise scaling (Section V-C).
    const quant::QuantizedMatrix vq = quant::quantizeMatrix(
        v_block, config.bits, quant::Granularity::TensorWise,
        config.group_size);

    // Keys feed Q*K^T as the B operand, so codes pack transposed.
    k_out.units = packInduced(k_layout, transposeCodes(kq.codes));
    k_out.params = kq.params;
    v_out.units = packInduced(v_layout, vq.codes);
    v_out.params = vq.params;
    k_out.dequant_lut = buildDequantLut(k_out.params, config.bits);
    v_out.dequant_lut = buildDequantLut(v_out.params, config.bits);
    widenDequantLut(k_out);
    widenDequantLut(v_out);
}

} // namespace bitdec::kv
