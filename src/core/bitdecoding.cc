#include "core/bitdecoding.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "attention/reference.h"
#include "common/logging.h"
#include "core/residual_kernel.h"
#include "quant/fast_dequant.h"

namespace bitdec::core {

std::string
BitDecodingConfig::label() const
{
    if (use_mx) {
        return std::string("BitDecoding-") +
               (mx_kind == quant::MxKind::MXFP4 ? "mxfp4" : "nvfp4");
    }
    std::string l = "BitDecoding-" + quant.label();
    if (version == 3)
        l += " (v3)";
    return l;
}

HeadDecoder::HeadDecoder(int head_dim, const BitDecodingConfig& config)
    : config_(config), cache_(head_dim, config.quant, config.tiling)
{
}

void
HeadDecoder::prefill(const Tensor<Half>& k, const Tensor<Half>& v)
{
    cache_.prefill(k, v);
}

void
HeadDecoder::appendToken(const std::vector<Half>& k, const std::vector<Half>& v)
{
    cache_.append(k, v);
}

PackingKernelResult
HeadDecoder::decodeStep(const Tensor<Half>& q_tile, float scale)
{
    PackingKernelOptions opts;
    opts.coop_softmax = config_.coop_softmax;
    opts.hopper_smem_path = config_.version == 3;
    return packingKernelAttention(q_tile, cache_, scale, opts);
}

Tensor<float>
HeadDecoder::fusedDecodeStep(const Tensor<Half>& q_tile, float scale,
                             exec::ThreadPool* pool)
{
    return fusedPackedAttention(q_tile, cache_, scale, pool);
}

namespace {

/** Builds the fused Packing-Kernel workload for the timing model. */
sim::KernelWorkload
packingKernelWorkload(const sim::GpuArch& arch, const attn::DecodeShape& shape,
                      const BitDecodingConfig& config,
                      const BitDecodingAblation& ab)
{
    const quant::QuantConfig& qc = config.quant;
    const int splits = attn::chooseNumSplits(arch, shape);

    sim::KernelWorkload wl;
    wl.label = config.label();
    wl.dram_read_bytes = shape.packedKvBytes(qc.bits) +
                         shape.metadataBytes(qc) + shape.qoBytes() / 2;
    wl.dram_write_bytes =
        shape.qoBytes() / 2 + attn::splitWorkspaceBytes(shape, splits) / 2;

    if (config.use_mx && arch.has_mxfp4_mma) {
        // Native block-scaled MMA: no dequantization, but P re-quantizes
        // after softmax before the PV MMA.
        wl.tc_flops_lowbit = attn::tcFlopsIssued(shape);
        wl.lowbit_width = 4;
        const double scores = static_cast<double>(shape.batch) *
                              shape.num_q_heads * shape.seq_len;
        wl.cuda = attn::softmaxOps(shape);
        wl.cuda.alu += scores * 2.0; // Quant(P): encode + scale extraction
        wl.cuda.fma += scores * 0.5;
    } else {
        wl.tc_flops_fp16 = attn::tcFlopsIssued(shape);
        const double elems = 2.0 * shape.batch * shape.num_kv_heads *
                             static_cast<double>(shape.seq_len) *
                             shape.head_dim;
        const quant::DequantCost cost =
            quant::dequantWordCost(qc.bits, /*fast_path=*/ab.layout);
        const double words = elems / quant::codesPerWord(qc.bits);
        wl.cuda.alu = words * cost.alu;
        wl.cuda.fma = words * cost.fma;
        wl.cuda += attn::softmaxOps(shape);
    }

    // Tiles stage through shared memory; the cooperative softmax adds the
    // sAcc round trip (P written and re-read once, in half precision).
    const double p_roundtrip = 2.0 * shape.batch * shape.num_q_heads *
                               static_cast<double>(shape.seq_len) * 2.0;
    wl.smem_bytes = 2.0 * (shape.packedKvBytes(qc.bits) +
                           shape.metadataBytes(qc)) +
                    p_roundtrip;
    wl.smem_conflict_factor = 1.0; // XOR-swizzled (Eq. 2)

    wl.ctas = shape.batch * shape.num_kv_heads * splits;
    wl.warps_per_cta = ab.warps ? config.tiling.warps() : 1;
    wl.wn = ab.warps ? config.tiling.wn : 1;
    wl.overlappable_cuda_fraction = ab.pipeline ? 0.9 : 0.0;
    wl.serialize_pipes = !ab.pipeline;
    wl.pipeline_fill_overhead = config.version == 3 ? 0.01 : 0.02;

    if (config.version == 3 && arch.has_wgmma) {
        wl.tc_flops_fp16 /= 1.35; // wgmma sustains a higher peak fraction
        wl.smem_bytes *= 0.75;    // TMA feeds smem without register bounce
    } else if (config.version == 2 && arch.has_wgmma) {
        // Legacy SM80 instruction stream on Hopper: dequant-heavy kernels
        // lose more sustained throughput than plain FP16 ones.
        wl.dram_derate = 1.5;
    }
    if (attn::isPaged(shape.scenario)) {
        const double pages = 2.0 * shape.batch * shape.num_kv_heads *
                             (static_cast<double>(shape.seq_len) /
                              shape.page_size);
        wl.cuda.alu += pages * 2.0;
        wl.dram_read_bytes += pages * 8.0;
    }
    return wl;
}

} // namespace

sim::SequenceTiming
bitDecodingTime(const sim::GpuArch& arch, const attn::DecodeShape& shape,
                const BitDecodingConfig& config,
                const BitDecodingAblation& ablation)
{
    std::vector<sim::KernelWorkload> seq;

    if (!ablation.layout) {
        // Continuous-packing baseline (Fig. 16): re-quantize and re-pack
        // the whole cache every step in a standalone pass, with manual
        // layout maintenance.
        const double fp16_kv = shape.fp16KvBytes();
        sim::KernelWorkload pack;
        pack.label = "continuous-packing";
        pack.dram_read_bytes = fp16_kv;
        pack.dram_write_bytes = shape.packedKvBytes(config.quant.bits) +
                                shape.metadataBytes(config.quant);
        const double elems = 2.0 * shape.batch * shape.num_kv_heads *
                             static_cast<double>(shape.seq_len) *
                             shape.head_dim;
        pack.cuda.alu = elems * 3.0; // min/max, quantize, pack shifts
        pack.cuda.fma = elems;
        pack.ctas = arch.num_sms * 4;
        pack.wn = 4;
        seq.push_back(pack);
    }

    seq.push_back(packingKernelWorkload(arch, shape, config, ablation));

    // Residual Kernel launch: attention over the FP16 tail (average fill
    // Nr/2); the block quantize+pack amortizes to noise across Nr steps.
    {
        const int nr =
            layout::residualBlockSize(config.tiling, config.quant.bits);
        sim::KernelWorkload res_wl;
        res_wl.label = "residual-kernel";
        res_wl.dram_read_bytes = 2.0 * shape.batch * shape.num_kv_heads *
                                 (nr / 2.0) * shape.head_dim * 2.0;
        res_wl.dram_write_bytes = shape.qoBytes() / 2;
        attn::DecodeShape rs = shape;
        rs.seq_len = nr / 2;
        res_wl.tc_flops_fp16 = attn::tcFlopsIssued(rs);
        res_wl.cuda = attn::softmaxOps(rs);
        res_wl.ctas = shape.batch * shape.num_kv_heads;
        res_wl.wn = 4;
        seq.push_back(res_wl);
    }

    const int splits = attn::chooseNumSplits(arch, shape);
    if (splits > 1) {
        sim::KernelWorkload combine;
        combine.label = "split-combine";
        combine.dram_read_bytes = attn::splitWorkspaceBytes(shape, splits) / 2;
        combine.dram_write_bytes = shape.qoBytes() / 2;
        combine.cuda.fma = static_cast<double>(shape.batch) *
                           shape.num_q_heads * shape.head_dim * splits;
        combine.ctas = shape.batch * shape.num_q_heads;
        combine.wn = 4;
        seq.push_back(combine);
    }
    return resolveSequence(arch, seq);
}

KernelBreakdown
bitDecodingBreakdown(const sim::GpuArch& arch, const attn::DecodeShape& shape,
                     const BitDecodingConfig& config)
{
    const sim::SequenceTiming t = bitDecodingTime(arch, shape, config);

    KernelBreakdown b;
    b.total_s = t.total_s;
    b.tc_utilization = t.tcUtilization();
    b.mem_utilization = t.memUtilization();

    // Standalone dequant/quant op time: rebuild the main workload and
    // isolate the non-softmax CUDA-core ops.
    const sim::KernelWorkload main =
        packingKernelWorkload(arch, shape, config, {});
    const sim::CudaCoreOps softmax = attn::softmaxOps(shape);
    sim::CudaCoreOps dq = main.cuda;
    dq.alu = std::max(0.0, dq.alu - softmax.alu);
    dq.fma = std::max(0.0, dq.fma - softmax.fma);
    dq.sfu = std::max(0.0, dq.sfu - softmax.sfu);
    const double cta_cover = std::min(
        1.0, static_cast<double>(main.ctas) / arch.num_sms);
    b.dequant_s = dq.weighted() / (arch.cudaOps() * std::max(1e-3, cta_cover));

    const double slots = std::max(1e-9, main.cuda.weighted());
    b.fma_share = main.cuda.fma / slots;
    b.alu_share = main.cuda.alu / slots;
    return b;
}

MxKvCache
mxEncodeKv(const Tensor<Half>& k, const Tensor<Half>& v, quant::MxKind kind)
{
    MxKvCache kv;
    kv.len = k.dim(0);
    kv.d = k.dim(1);
    // K rows feed QK^T along d: blocks along d. V feeds PV along tokens;
    // encode V^T so blocks run along the MMA K dimension (tokens). The
    // transpose is a single raw-storage pass (bit moves, no conversion).
    kv.k = quant::mxEncodeMatrix(k, kind);
    Tensor<Half> vt({v.dim(1), v.dim(0)});
    const Half* src = v.data();
    Half* dst = vt.data();
    const std::size_t rows = v.dim(0);
    const std::size_t cols = v.dim(1);
    for (std::size_t t = 0; t < rows; t++)
        for (std::size_t c = 0; c < cols; c++)
            dst[c * rows + t] = src[t * cols + c];
    kv.vt = quant::mxEncodeMatrix(vt, kind);
    return kv;
}

Tensor<float>
mxAttention(const Tensor<Half>& q, const MxKvCache& kv, float scale,
            bool requantize_p, exec::ThreadPool* pool)
{
    const std::size_t gq = q.dim(0);
    const std::size_t d = q.dim(1);
    const std::size_t len = kv.len;
    BITDEC_ASSERT(d == kv.d, "query width mismatch");
    const std::size_t block =
        static_cast<std::size_t>(quant::mxBlockSize(kv.k.kind));
    const std::size_t padded_len = len == 0
                                       ? 0
                                       : (len + block - 1) / block * block;

    // Bulk-convert Q once; per-row buffers hoist out of the row loop and
    // are reused across rows (thread-local under the pool).
    std::vector<float> qf(gq * d);
    toFloat(q.data(), qf.data(), qf.size());

    Tensor<float> out({gq, d});
    exec::parallelFor(pool, gq, [&](std::size_t r) {
        thread_local std::vector<float> logits, p, padded;
        if (logits.size() < len) {
            logits.resize(len);
            p.resize(len);
        }

        const float* qrow = qf.data() + r * d;
        float m = -std::numeric_limits<float>::infinity();
        for (std::size_t t = 0; t < len; t++) {
            float s = 0.f;
            for (std::size_t c = 0; c < d; c++)
                s += qrow[c] * kv.k.valueAt(t, c);
            logits[t] = s * scale;
            m = std::max(m, logits[t]);
        }
        float l = 0.f;
        for (std::size_t t = 0; t < len; t++) {
            p[t] = std::exp(logits[t] - m);
            l += p[t];
        }
        if (requantize_p && len > 0) {
            // Quant(P): the PV MMA consumes P in the low-precision format,
            // re-quantized on the fly per block of tokens. resize() only
            // trims/extends within retained capacity — no reallocation in
            // steady state.
            padded.resize(padded_len);
            std::fill(padded.begin(), padded.end(), 0.f);
            std::copy(p.begin(), p.begin() + static_cast<std::ptrdiff_t>(len),
                      padded.begin());
            const quant::MxVector pq = quant::mxEncode(padded, kv.k.kind);
            for (std::size_t t = 0; t < len; t++)
                p[t] = pq.valueAt(t);
        }
        for (std::size_t c = 0; c < d; c++) {
            float acc = 0.f;
            for (std::size_t t = 0; t < len; t++)
                acc += p[t] * kv.vt.valueAt(c, t);
            out.at(r, c) = l > 0.f ? acc / l : 0.f;
        }
    });
    return out;
}

Tensor<float>
mxAttention(const Tensor<Half>& q, const Tensor<Half>& k, const Tensor<Half>& v,
            quant::MxKind kind, float scale, bool requantize_p)
{
    return mxAttention(q, mxEncodeKv(k, v, kind), scale, requantize_p);
}

} // namespace bitdec::core
