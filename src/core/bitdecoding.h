/**
 * @file
 * BitDecoding public API: configuration, the per-head functional decoder,
 * the end-to-end kernel timing model with ablation switches, and the
 * Blackwell native-MX functional path.
 *
 * Typical use (see examples/quickstart.cpp):
 * @code
 *   core::BitDecodingConfig cfg;             // KC-4, wn = 4
 *   core::HeadDecoder dec(128, cfg);         // head_dim = 128
 *   dec.prefill(k_ctx, v_ctx);               // pack the prompt KV
 *   auto out = dec.decodeStep(q_tile, scale) // fused low-bit attention
 * @endcode
 */
#ifndef BITDEC_CORE_BITDECODING_H
#define BITDEC_CORE_BITDECODING_H

#include "attention/workloads.h"
#include "core/packing_kernel.h"
#include "gpusim/timing.h"
#include "kvcache/kv_cache.h"
#include "quant/mx_format.h"

namespace bitdec::core {

/** Top-level BitDecoding configuration. */
struct BitDecodingConfig
{
    quant::QuantConfig quant;     //!< bits / key granularity / group size
    layout::WarpTiling tiling;    //!< wm = 1, wn warps along KV
    bool coop_softmax = true;     //!< Algorithm 1 (required when wn > 1)
    int version = 2;              //!< 2 = SM80 mma path, 3 = Hopper wgmma
    bool use_mx = false;          //!< Blackwell native block-scaled MMA
    quant::MxKind mx_kind = quant::MxKind::MXFP4;

    /** Paper-style label, e.g. "BitDecoding-KC-4". */
    std::string label() const;
};

/** Ablation switches matching Fig. 16's breakdown. */
struct BitDecodingAblation
{
    bool layout = true;   //!< induced layout (off = continuous packing)
    bool warps = true;    //!< wn-wide warp parallelism (off = wn = 1)
    bool pipeline = true; //!< software pipeline / cp.async overlap
};

/**
 * Functional per-KV-head decoder owning a packed cache.
 *
 * All query heads of the group decode together (query transformation);
 * appended tokens accumulate in the FP16 residual and are packed by the
 * Residual Kernel path when a block fills.
 */
class HeadDecoder
{
  public:
    HeadDecoder(int head_dim, const BitDecodingConfig& config);

    /** Packs a full prompt context. */
    void prefill(const Tensor<Half>& k, const Tensor<Half>& v);

    /** Appends one generated token's K/V. */
    void appendToken(const std::vector<Half>& k, const std::vector<Half>& v);

    /**
     * Runs one decode step for this head group on the warp/register
     * emulation path (validates layouts; slow).
     * @param q_tile [gq x d] transformed queries, gq <= 16
     * @param scale  logit scale
     */
    PackingKernelResult decodeStep(const Tensor<Half>& q_tile, float scale);

    /**
     * Runs one decode step on the fused CPU execution backend — the fast
     * path serving and benches use. Matches decodeStep to ~1e-3 max-abs.
     * @param pool optional pool to spread KV chunks over; null = serial
     */
    Tensor<float> fusedDecodeStep(const Tensor<Half>& q_tile, float scale,
                                  exec::ThreadPool* pool = nullptr);

    /** Underlying cache (inspection / tests). */
    const kv::PackedHeadCache& cache() const { return cache_; }

    /** Configuration. */
    const BitDecodingConfig& config() const { return config_; }

  private:
    BitDecodingConfig config_;
    kv::PackedHeadCache cache_;
};

/**
 * Kernel-level timing of one BitDecoding decode step (fused Packing Kernel
 * + Residual Kernel launch + split combine when needed).
 *
 * @param ablation feature switches; defaults reproduce the full system
 */
sim::SequenceTiming bitDecodingTime(const sim::GpuArch& arch,
                                    const attn::DecodeShape& shape,
                                    const BitDecodingConfig& config,
                                    const BitDecodingAblation& ablation = {});

/** Per-step instruction/pipe breakdown used by Figs. 4b, 15 and Table III. */
struct KernelBreakdown
{
    double total_s = 0;        //!< step latency
    double dequant_s = 0;      //!< standalone time of dequant/quant ops
    double tc_utilization = 0; //!< Tensor-Core busy fraction
    double mem_utilization = 0;//!< DRAM busy fraction
    double fma_share = 0;      //!< FMA share of CUDA-core slots
    double alu_share = 0;      //!< ALU share of CUDA-core slots
};

/** Computes the breakdown for a BitDecoding step. */
KernelBreakdown bitDecodingBreakdown(const sim::GpuArch& arch,
                                     const attn::DecodeShape& shape,
                                     const BitDecodingConfig& config);

/**
 * K/V pre-encoded into an MX block-scaled format, ready for repeated
 * decode steps. V is transposed once (single raw-storage pass) so its
 * scale blocks run along the MMA K dimension (tokens); re-encoding it on
 * every attention call was the old hot-path sin.
 */
struct MxKvCache
{
    quant::MxMatrix k;  //!< [len x d], blocks along d
    quant::MxMatrix vt; //!< [d x len] (transposed V), blocks along tokens
    std::size_t len = 0;
    std::size_t d = 0;
};

/** Encodes K and V once for repeated mxAttention calls. */
MxKvCache mxEncodeKv(const Tensor<Half>& k, const Tensor<Half>& v,
                     quant::MxKind kind);

/**
 * Functional Blackwell path: attention with K/V (and optionally P) in a
 * native block-scaled MX format. P re-quantization after softmax models
 * the on-the-fly Quant(P) the low-precision PV MMA requires.
 *
 * This overload consumes a pre-encoded cache; query rows optionally
 * spread across the thread pool (bitwise identical for any thread count).
 */
Tensor<float> mxAttention(const Tensor<Half>& q, const MxKvCache& kv,
                          float scale, bool requantize_p = true,
                          exec::ThreadPool* pool = nullptr);

/** Convenience overload: encodes K/V (once) and runs attention. */
Tensor<float> mxAttention(const Tensor<Half>& q, const Tensor<Half>& k,
                          const Tensor<Half>& v, quant::MxKind kind,
                          float scale, bool requantize_p = true);

} // namespace bitdec::core

#endif // BITDEC_CORE_BITDECODING_H
