/**
 * @file
 * The Residual Kernel: fused computation + quantization + packing of a
 * full residual KV block (Section V-B).
 *
 * The warp-emulated pack walks the data exactly like the device: every
 * lane quantizes the fragment values it received from ldmatrix and packs
 * them into 16-bit words in registers; words store to the packed cache at
 * the canonical unit slots. Because the Packing Kernel mirrors the same
 * instruction configuration, the resulting bytes must equal the canonical
 * induced-layout pack — the executable form of the paper's zero-overhead
 * layout-induction claim (tests assert byte equality).
 *
 * Quantization parameters come from thread-local min/max partials reduced
 * across lanes with __shfl_xor_sync butterflies (emulated faithfully in
 * warpGroupMinMax) and across warps through a small shared buffer.
 */
#ifndef BITDEC_CORE_RESIDUAL_KERNEL_H
#define BITDEC_CORE_RESIDUAL_KERNEL_H

#include "attention/workloads.h"
#include "gpusim/timing.h"
#include "gpusim/warp.h"
#include "kvcache/kv_cache.h"

namespace bitdec::core {

/**
 * Warp-emulated fused quantize+pack of one residual key block.
 *
 * @param k_block [Nr x d] FP16 keys
 * @param cfg     quantization config (bit width, key granularity, groups)
 * @param klay    induced layout for the K^T operand ([d x Nr])
 * @return        packed block; bytes must equal kv::packBlock's K output
 */
kv::PackedBlock residualKernelPackKeys(const Tensor<Half>& k_block,
                                       const quant::QuantConfig& cfg,
                                       const layout::InducedLayout& klay);

/**
 * Warp-emulated fused quantize+pack of one residual value block
 * ([Nr x d] operand, tensor-wise scaling).
 */
kv::PackedBlock residualKernelPackValues(const Tensor<Half>& v_block,
                                         const quant::QuantConfig& cfg,
                                         const layout::InducedLayout& vlay);

/**
 * Min/max reduction across a warp using shfl_xor butterflies, as issued by
 * the Residual Kernel: lanes whose ids differ only in the masked bits
 * exchange partials. Returns per-lane (min, max) after the butterfly over
 * @p masks (e.g. {4, 8, 16} reduces across the ldmatrix column groups).
 */
void warpGroupMinMax(const sim::WarpVar<float>& local_min,
                     const sim::WarpVar<float>& local_max,
                     const std::vector<int>& masks,
                     sim::WarpVar<float>& min_out,
                     sim::WarpVar<float>& max_out);

/**
 * Timing of the per-step Residual Kernel launch: attention over the FP16
 * residual tail plus the amortized quantize+pack of completed blocks.
 *
 * @param with_pack true on steps where a block fills (res_len == Nr)
 */
sim::SequenceTiming residualKernelTime(const sim::GpuArch& arch,
                                       const attn::DecodeShape& shape,
                                       const quant::QuantConfig& cfg,
                                       int residual_len, bool with_pack);

} // namespace bitdec::core

#endif // BITDEC_CORE_RESIDUAL_KERNEL_H
