#include "core/residual_kernel.h"

#include <algorithm>

#include "common/logging.h"
#include "quant/fast_dequant.h"
#include "quant/packing.h"

namespace bitdec::core {

namespace {

/**
 * Per-lane fragment quantize + in-register pack for one operand. The value
 * of B coordinate (row, col) is fetched through @p value_of and its group
 * parameters through @p param_of, mirroring how the kernel holds fragment
 * values in registers and Kp/Vp parameters in shared memory.
 */
template <typename ValueFn, typename ParamFn>
std::vector<std::uint32_t>
packViaFragments(const layout::InducedLayout& lay, ValueFn value_of,
                 ParamFn param_of)
{
    std::vector<std::uint32_t> units(lay.numUnits());
    std::uint8_t codes[16];
    for (int kt = 0; kt < lay.numKTiles(); kt++) {
        for (int ng = 0; ng < lay.numNGroups(); ng++) {
            for (int lane = 0; lane < sim::kWarpSize; lane++) {
                for (int pr = 0; pr < lay.pairsPerLane(); pr++) {
                    const layout::UnitId id{kt, ng, lane, pr};
                    for (int i = 0; i < lay.codesPerUnit(); i++) {
                        const layout::CodeCoord c = lay.codeCoord(id, i);
                        codes[i] = quant::quantizeValue(
                            value_of(c.row, c.col), param_of(c.row, c.col),
                            lay.bits());
                    }
                    units[lay.unitSlot(id)] = quant::packWord(
                        codes, lay.bits(), quant::PackOrder::Interleaved);
                }
            }
        }
    }
    return units;
}

} // namespace

kv::PackedBlock
residualKernelPackKeys(const Tensor<Half>& k_block,
                       const quant::QuantConfig& cfg,
                       const layout::InducedLayout& klay)
{
    // Parameters: the device derives them from shfl_xor-reduced min/max;
    // the math is identical to the grouped reduction here.
    const quant::QuantizedMatrix kq = quant::quantizeMatrix(
        k_block, cfg.bits, cfg.key_granularity, cfg.group_size);

    kv::PackedBlock out;
    out.params = kq.params;
    // B operand is K^T: row = channel, col = token.
    out.units = packViaFragments(
        klay,
        [&](int row, int col) {
            return k_block.at(static_cast<std::size_t>(col),
                              static_cast<std::size_t>(row))
                .toFloat();
        },
        [&](int row, int col) {
            if (cfg.key_granularity == quant::Granularity::TensorWise) {
                return quant::QuantParams::fromHalf2(kq.params.at(
                    static_cast<std::size_t>(col),
                    static_cast<std::size_t>(row / cfg.group_size)));
            }
            return quant::QuantParams::fromHalf2(kq.params.at(
                static_cast<std::size_t>(col / cfg.group_size),
                static_cast<std::size_t>(row)));
        });
    return out;
}

kv::PackedBlock
residualKernelPackValues(const Tensor<Half>& v_block,
                         const quant::QuantConfig& cfg,
                         const layout::InducedLayout& vlay)
{
    const quant::QuantizedMatrix vq = quant::quantizeMatrix(
        v_block, cfg.bits, quant::Granularity::TensorWise, cfg.group_size);

    kv::PackedBlock out;
    out.params = vq.params;
    // B operand is V itself: row = token, col = channel.
    out.units = packViaFragments(
        vlay,
        [&](int row, int col) {
            return v_block.at(static_cast<std::size_t>(row),
                              static_cast<std::size_t>(col))
                .toFloat();
        },
        [&](int row, int col) {
            return quant::QuantParams::fromHalf2(vq.params.at(
                static_cast<std::size_t>(row),
                static_cast<std::size_t>(col / cfg.group_size)));
        });
    return out;
}

void
warpGroupMinMax(const sim::WarpVar<float>& local_min,
                const sim::WarpVar<float>& local_max,
                const std::vector<int>& masks, sim::WarpVar<float>& min_out,
                sim::WarpVar<float>& max_out)
{
    min_out = local_min;
    max_out = local_max;
    for (int mask : masks) {
        const auto other_min = sim::shflXor(min_out, mask);
        const auto other_max = sim::shflXor(max_out, mask);
        for (int lane = 0; lane < sim::kWarpSize; lane++) {
            min_out[static_cast<std::size_t>(lane)] =
                std::min(min_out[static_cast<std::size_t>(lane)],
                         other_min[static_cast<std::size_t>(lane)]);
            max_out[static_cast<std::size_t>(lane)] =
                std::max(max_out[static_cast<std::size_t>(lane)],
                         other_max[static_cast<std::size_t>(lane)]);
        }
    }
}

sim::SequenceTiming
residualKernelTime(const sim::GpuArch& arch, const attn::DecodeShape& shape,
                   const quant::QuantConfig& cfg, int residual_len,
                   bool with_pack)
{
    sim::KernelWorkload wl;
    wl.label = "residual-kernel";
    // Attention over the FP16 residual tail.
    const double res_kv_bytes = 2.0 * shape.batch * shape.num_kv_heads *
                                residual_len * shape.head_dim * 2.0;
    wl.dram_read_bytes = res_kv_bytes + shape.qoBytes() / 2;
    wl.dram_write_bytes = shape.qoBytes() / 2;
    attn::DecodeShape res_shape = shape;
    res_shape.seq_len = std::max(residual_len, 1);
    wl.tc_flops_fp16 = attn::tcFlopsIssued(res_shape);
    wl.cuda = attn::softmaxOps(res_shape);
    wl.smem_bytes = 2.0 * res_kv_bytes;
    wl.ctas = shape.batch * shape.num_kv_heads;
    wl.warps_per_cta = 4;
    wl.wn = 4;

    if (with_pack) {
        // Fused quantize+pack of the full block: per element one min/max
        // compare chain (amortized), one quantize FMA, and 1/R of a pack.
        const double elems = 2.0 * shape.batch * shape.num_kv_heads *
                             residual_len * shape.head_dim;
        wl.cuda.alu += elems * 2.0;
        wl.cuda.fma += elems;
        // Packed block + metadata write back.
        wl.dram_write_bytes +=
            elems * (static_cast<double>(cfg.bits) / 8.0) +
            shape.metadataBytes(cfg) *
                (static_cast<double>(residual_len) / shape.seq_len);
    }
    return resolveSequence(arch, {wl});
}

} // namespace bitdec::core
