#include "core/query_transform.h"

#include "common/logging.h"

namespace bitdec::core {

Tensor<Half>
queryGroupTile(const Tensor<Half>& q, int kv_head, int hkv)
{
    BITDEC_ASSERT(q.rank() == 2, "queries must be [hq x d]");
    const int hq = static_cast<int>(q.dim(0));
    BITDEC_ASSERT(hkv > 0 && hq % hkv == 0,
                  "query heads must divide evenly into KV heads");
    BITDEC_ASSERT(kv_head >= 0 && kv_head < hkv, "kv head out of range");
    const int gq = hq / hkv;
    const std::size_t d = q.dim(1);

    // Head h attends through KV head h / gq; group rows are contiguous.
    Tensor<Half> tile({static_cast<std::size_t>(gq), d});
    for (int g = 0; g < gq; g++) {
        const std::size_t h = static_cast<std::size_t>(kv_head * gq + g);
        for (std::size_t c = 0; c < d; c++)
            tile.at(static_cast<std::size_t>(g), c) = q.at(h, c);
    }
    return tile;
}

void
scatterGroupOutput(const Tensor<float>& o_tile, int kv_head, int hkv,
                   Tensor<float>& o_full)
{
    const int gq = static_cast<int>(o_tile.dim(0));
    const std::size_t d = o_tile.dim(1);
    BITDEC_ASSERT(o_full.dim(1) == d, "output width mismatch");
    BITDEC_ASSERT(o_full.dim(0) == static_cast<std::size_t>(gq * hkv),
                  "output height must be hq = gq * hkv");
    for (int g = 0; g < gq; g++) {
        const std::size_t h = static_cast<std::size_t>(kv_head * gq + g);
        for (std::size_t c = 0; c < d; c++)
            o_full.at(h, c) = o_tile.at(static_cast<std::size_t>(g), c);
    }
}

Tensor<Half>
padQueryTile(const Tensor<Half>& tile, int m_tile)
{
    const std::size_t gq = tile.dim(0);
    const std::size_t d = tile.dim(1);
    BITDEC_ASSERT(static_cast<std::size_t>(m_tile) >= gq,
                  "cannot pad below the tile height");
    Tensor<Half> out({static_cast<std::size_t>(m_tile), d});
    for (std::size_t r = 0; r < gq; r++)
        for (std::size_t c = 0; c < d; c++)
            out.at(r, c) = tile.at(r, c);
    return out;
}

} // namespace bitdec::core
