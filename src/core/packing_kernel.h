/**
 * @file
 * The Packing Kernel: fused dequantization + Tensor-Core attention over the
 * packed low-bit KV cache (Section V-C), emulated at warp/register
 * granularity.
 *
 * The functional model reproduces the device dataflow:
 *  - packed 32-bit units are fetched by (lane, register-pair) exactly as
 *    ldmatrix would deliver them;
 *  - the lop3 magic-number path dequantizes each extraction pair into the
 *    half2 register the mma.sync B fragment expects — alignment holds only
 *    because producer and consumer share the induced layout;
 *  - QK^T accumulates per warp over k-tiles; warps partition the KV (N)
 *    dimension (wm = 1, wide wn);
 *  - the multi-warp cooperative softmax (Algorithm 1) reduces row maxima
 *    and exp-sums across warps through the sTMP buffer and round-trips P
 *    through sAcc so the PV MMA reads A fragments in a valid layout;
 *  - PV dequantizes V units the same way and accumulates the output with
 *    the running online-softmax state across residual blocks;
 *  - the FP16 residual tail is processed like FlashDecoding and merged.
 *
 * Disabling cooperative softmax while keeping wn > 1 reproduces the
 * invalid-result failure of Table III: each warp then normalizes with its
 * local max/sum and partial states merge incorrectly.
 */
#ifndef BITDEC_CORE_PACKING_KERNEL_H
#define BITDEC_CORE_PACKING_KERNEL_H

#include "attention/workloads.h"
#include "common/tensor.h"
#include "exec/simd/dispatch.h"
#include "exec/thread_pool.h"
#include "gpusim/timing.h"
#include "kvcache/kv_cache.h"

namespace bitdec::core {

/** Packed blocks per split chunk of the fused packed path; fixed so
 *  chunking (and therefore the merge order) never depends on threads. */
constexpr int kChunkBlocks = 4;

/** Behavioral switches of the functional Packing Kernel. */
struct PackingKernelOptions
{
    bool coop_softmax = true;  //!< Algorithm 1 cross-warp reduction
    bool hopper_smem_path = false; //!< route dequantized B through SMEM
                                   //!< (STSM + wgmma_SS dataflow)
};

/** Output of one Packing-Kernel attention call. */
struct PackingKernelResult
{
    Tensor<float> out; //!< [m_tile x d]; rows beyond gq are padding
    bool valid;        //!< false when the configuration breaks correctness
};

/**
 * Runs attention for one KV head group over a packed cache.
 *
 * @param q_tile query tile [gq x d] (from query transformation), gq <= 16
 * @param cache  packed + residual KV of this head
 * @param scale  logit scale
 * @param opts   behavioral switches
 */
PackingKernelResult packingKernelAttention(const Tensor<Half>& q_tile,
                                           const kv::PackedHeadCache& cache,
                                           float scale,
                                           const PackingKernelOptions& opts);

/**
 * Fast-path fused attention over a packed cache (the CPU execution
 * backend's hot loop). Numerically it follows the same dataflow as
 * packingKernelAttention — per-block magic-FMA dequantization, P rounded
 * through half precision (the sAcc round trip), online-softmax merges,
 * the FP16 residual tail — but executes it as a tile-fused pipeline:
 * each packed block is dequantized word-level into a reusable thread-local
 * [Nr x d] scratch tile via the cache's dequant routing and consumed by
 * QK/softmax/PV immediately, so the full FP16 cache is never materialized
 * and nothing is allocated per tile.
 *
 * KV blocks are processed in fixed-size chunks whose partial softmax
 * states merge sequentially in chunk order, so the output is bitwise
 * identical for any thread count (and for pool == nullptr, which runs
 * the chunks inline).
 *
 * Matches packingKernelAttention (cooperative softmax) to ~1e-3 max-abs
 * (differences: fp32 accumulation order and the split-KV merge).
 *
 * @param q_tile query tile [gq x d], gq <= 16
 * @param cache  packed + residual KV of this head
 * @param scale  logit scale
 * @param pool   optional pool to spread KV chunks over; null = serial
 * @return       [gq x d] output (no padding rows)
 */
Tensor<float> fusedPackedAttention(const Tensor<Half>& q_tile,
                                   const kv::PackedHeadCache& cache,
                                   float scale,
                                   exec::ThreadPool* pool = nullptr);

/**
 * SIMD twin of fusedPackedAttention: identical chunking (kChunkBlocks
 * blocks per partial + FP16 residual tail) and sequential merges, so the
 * output is bitwise identical to the scalar path for any thread count.
 * Packed blocks dequantize through the cache's linear plans — K directly
 * into a channel-major scratch tile (the vector QK layout), V token-major
 * — via gathered LUT lookups instead of route-table walks.
 *
 * @param level SIMD level whose kernel table to use; fatal when this host
 *              cannot run it (backends gate availability upstream)
 */
Tensor<float> fusedPackedAttentionSimd(const Tensor<Half>& q_tile,
                                       const kv::PackedHeadCache& cache,
                                       float scale, exec::simd::Level level,
                                       exec::ThreadPool* pool = nullptr);

} // namespace bitdec::core

#endif // BITDEC_CORE_PACKING_KERNEL_H
