/**
 * @file
 * Query transformation (Section V-A): reshapes the decode-step query
 * tensor from [1, (gq, hkv)] to [gq, hkv] so the query heads that share a
 * KV head form one m-tile of a Tensor-Core GEMM instead of gq separate
 * underfilled GEMVs. Supports MHA (gq = 1), GQA (gq > 1) and MQA
 * (hkv = 1) without changing attention semantics.
 */
#ifndef BITDEC_CORE_QUERY_TRANSFORM_H
#define BITDEC_CORE_QUERY_TRANSFORM_H

#include "common/half.h"
#include "common/tensor.h"

namespace bitdec::core {

/**
 * Gathers the query rows of one KV head group.
 *
 * @param q        decode queries, [hq x d] (one token, all query heads)
 * @param kv_head  target KV head index
 * @param hkv      number of KV heads
 * @return         [gq x d] tile: the gq query heads mapping to kv_head
 */
Tensor<Half> queryGroupTile(const Tensor<Half>& q, int kv_head, int hkv);

/**
 * Scatters a per-group output tile back into the [hq x d] output tensor
 * (the inverse of queryGroupTile).
 */
void scatterGroupOutput(const Tensor<float>& o_tile, int kv_head, int hkv,
                        Tensor<float>& o_full);

/**
 * Pads a [gq x d] tile to [m_tile x d] with zero rows so it fills a
 * Tensor-Core m-tile; extra rows produce garbage outputs that are simply
 * not written back, exactly like the kernels mask them.
 */
Tensor<Half> padQueryTile(const Tensor<Half>& tile, int m_tile);

} // namespace bitdec::core

#endif // BITDEC_CORE_QUERY_TRANSFORM_H
