#include "core/packing_kernel.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "attention/reference.h"
#include "common/logging.h"
#include "core/query_transform.h"
#include "exec/dequant_plan.h"
#include "exec/fused_attention.h"
#include "gpusim/fragment.h"
#include "quant/fast_dequant.h"

namespace bitdec::core {

namespace {

using sim::FragmentLayout;
using sim::MmaShape;
using sim::Operand;
using sim::WarpFragment;

/** Dequantizes one magic-biased half with folded scale/zero (device FMA). */
float
dequantMagic(Half magic, const quant::QuantParams& p)
{
    const float s = p.scale.toFloat();
    const Half neg_bias(-(1024.0f + p.zero.toFloat()) * s);
    return Half(magic.toFloat() * s + neg_bias.toFloat()).toFloat();
}

/** Key-tensor quantization parameters for element (token, channel). */
quant::QuantParams
keyParams(const kv::PackedBlock& blk, const quant::QuantConfig& cfg, int token,
          int channel)
{
    if (cfg.key_granularity == quant::Granularity::TensorWise) {
        return quant::QuantParams::fromHalf2(blk.params.at(
            static_cast<std::size_t>(token),
            static_cast<std::size_t>(channel / cfg.group_size)));
    }
    return quant::QuantParams::fromHalf2(blk.params.at(
        static_cast<std::size_t>(token / cfg.group_size),
        static_cast<std::size_t>(channel)));
}

/** Value-tensor parameters (always tensor-wise per token). */
quant::QuantParams
valueParams(const kv::PackedBlock& blk, const quant::QuantConfig& cfg,
            int token, int channel)
{
    return quant::QuantParams::fromHalf2(
        blk.params.at(static_cast<std::size_t>(token),
                      static_cast<std::size_t>(channel / cfg.group_size)));
}

/**
 * Builds the B fragment of one MMA tile by extracting and dequantizing the
 * packed units of the induced layout — the ldmatrix + lop3 + FMA register
 * path. Tile p of group @p ngroup at K tile @p ktile.
 *
 * @param param_of (row, col) -> QuantParams for the B operand coordinate
 */
template <typename ParamFn>
WarpFragment<Half>
dequantBFragment(const layout::InducedLayout& lay,
                 const std::vector<std::uint32_t>& units, int ktile,
                 int ngroup, int p, ParamFn param_of)
{
    WarpFragment<Half> frag = sim::makeFragment<Half>();
    for (int lane = 0; lane < sim::kWarpSize; lane++) {
        for (int pair = 0; pair < lay.pairsPerLane(); pair++) {
            const layout::UnitId id{ktile, ngroup, lane, pair};
            const std::uint32_t word = units[lay.unitSlot(id)];
            // One lop3 extraction yields the half2 register of this pair.
            const std::uint32_t h2 =
                quant::extractMagicPair(word, p, lay.bits());
            const Half lo =
                Half::fromBits(static_cast<std::uint16_t>(h2 & 0xFFFF));
            const Half hi =
                Half::fromBits(static_cast<std::uint16_t>(h2 >> 16));
            const layout::CodeCoord c_lo = lay.codeCoord(id, 2 * p);
            const layout::CodeCoord c_hi = lay.codeCoord(id, 2 * p + 1);
            // Fragment elements: (pair*2, pair*2+1) hold rows (2t, 2t+1)
            // of the 8-row half selected by 'pair' — the mma B layout.
            frag[static_cast<std::size_t>(lane)]
                [static_cast<std::size_t>(2 * pair)] =
                Half(dequantMagic(lo, param_of(c_lo.row, c_lo.col)));
            frag[static_cast<std::size_t>(lane)]
                [static_cast<std::size_t>(2 * pair + 1)] =
                Half(dequantMagic(hi, param_of(c_hi.row, c_hi.col)));
        }
    }
    return frag;
}

/** Verifies a dequantized B fragment against mma's expected coordinates. */
bool
fragmentMatchesLayout(const FragmentLayout& bl, const WarpFragment<Half>& frag,
                      const Tensor<Half>& expected, int row0, int col0)
{
    for (int lane = 0; lane < sim::kWarpSize; lane++) {
        for (int e = 0; e < bl.eltsPerLane(); e++) {
            const sim::Coord c = bl.coordOf(lane, e);
            const Half want = expected.at(static_cast<std::size_t>(row0 + c.row),
                                          static_cast<std::size_t>(col0 + c.col));
            const Half got = frag[static_cast<std::size_t>(lane)]
                                 [static_cast<std::size_t>(e)];
            if (want.bits() != got.bits())
                return false;
        }
    }
    return true;
}

} // namespace

PackingKernelResult
packingKernelAttention(const Tensor<Half>& q_tile,
                       const kv::PackedHeadCache& cache, float scale,
                       const PackingKernelOptions& opts)
{
    const int d = cache.residualKeys().rank() == 2
                      ? static_cast<int>(cache.residualKeys().dim(1))
                      : 0;
    const int gq = static_cast<int>(q_tile.dim(0));
    BITDEC_ASSERT(gq >= 1 && gq <= 16, "query tile must fit one m16 tile");
    BITDEC_ASSERT(static_cast<int>(q_tile.dim(1)) == d, "query width mismatch");

    const layout::WarpTiling& tiling = cache.tiling();
    const quant::QuantConfig& cfg = cache.config();
    const int wn = tiling.wn;
    const int nr = cache.residualBlockSize();
    const int m_tile = 16;
    const MmaShape shape = tiling.mma;
    const FragmentLayout la(shape, Operand::A);
    const FragmentLayout lb(shape, Operand::B);
    const FragmentLayout lc(shape, Operand::C);
    const int pk = tiling.pk();
    const int pn = tiling.pn();

    const Tensor<Half> q_pad = padQueryTile(q_tile, m_tile);

    // Running online-softmax state per query row.
    std::vector<float> run_m(static_cast<std::size_t>(m_tile),
                             -std::numeric_limits<float>::infinity());
    std::vector<float> run_l(static_cast<std::size_t>(m_tile), 0.f);
    Tensor<float> run_o({static_cast<std::size_t>(m_tile),
                         static_cast<std::size_t>(d)});

    bool valid = (wn == 1) || opts.coop_softmax;
    bool layout_ok = true;

    // Pre-load Q fragments per k-tile (registers live across the loop).
    const int k_tiles_d = d / pk;
    std::vector<WarpFragment<Half>> q_frags;
    for (int kt = 0; kt < k_tiles_d; kt++)
        q_frags.push_back(loadFragment(la, q_pad, 0, kt * pk));

    const layout::InducedLayout& klay = cache.keyLayout();
    const layout::InducedLayout& vlay = cache.valueLayout();
    const int r = klay.tilesPerUnit();

    for (std::size_t blk = 0; blk < cache.keyBlocks().size(); blk++) {
        const kv::PackedBlock& kb = cache.keyBlocks()[blk];
        const kv::PackedBlock& vb = cache.valueBlocks()[blk];

        // ---- S = Q K^T over this block: [m_tile x nr]. -------------------
        Tensor<float> s_block({static_cast<std::size_t>(m_tile),
                               static_cast<std::size_t>(nr)});
        const int n_tiles = nr / pn;
        for (int nt = 0; nt < n_tiles; nt++) {
            const int ngroup = nt / r;
            const int p = nt % r;
            WarpFragment<float> acc = sim::makeFragment<float>();
            for (int kt = 0; kt < k_tiles_d; kt++) {
                auto param_of = [&](int row, int col) {
                    // B operand is K^T: row = channel, col = token.
                    return keyParams(kb, cfg, col, row);
                };
                WarpFragment<Half> bfrag = dequantBFragment(
                    klay, kb.units, kt, ngroup, p, param_of);
                if (opts.hopper_smem_path) {
                    // Hopper dataflow: wgmma requires the B operand in
                    // shared memory, so the dequantized registers are
                    // stored with STSM and re-read by wgmma_SS. The round
                    // trip must be the identity for the layout to be valid.
                    const Tensor<Half> smem = fragmentToMatrix(lb, bfrag);
                    const WarpFragment<Half> reloaded =
                        loadFragment(lb, smem, 0, 0);
                    layout_ok = layout_ok &&
                                fragmentMatchesLayout(lb, reloaded, smem, 0, 0);
                    bfrag = reloaded;
                }
                acc = mmaSync(shape, q_frags[static_cast<std::size_t>(kt)],
                              bfrag, acc);
            }
            storeAccumFragment(lc, acc, s_block, 0, nt * pn);
        }
        for (std::size_t i = 0; i < s_block.numel(); i++)
            s_block[i] *= scale;

        // ---- Softmax across warps (Algorithm 1). -------------------------
        // Warp w owns the n-tile columns with (nt % wn) == w.
        Tensor<Half> s_acc({static_cast<std::size_t>(m_tile),
                            static_cast<std::size_t>(nr)}); // sAcc in SMEM
        std::vector<float> block_l(static_cast<std::size_t>(m_tile), 0.f);
        std::vector<float> new_m(static_cast<std::size_t>(m_tile), 0.f);

        if (valid) {
            // Cooperative path: sTMP cross-warp max, then shared P.
            for (int row = 0; row < m_tile; row++) {
                float warp_max[32]; // sTMP: one slot per warp
                for (int w = 0; w < wn; w++) {
                    warp_max[w] = -std::numeric_limits<float>::infinity();
                    for (int nt = w; nt < n_tiles; nt += wn) {
                        for (int cc = 0; cc < pn; cc++) {
                            warp_max[w] = std::max(
                                warp_max[w],
                                s_block.at(static_cast<std::size_t>(row),
                                           static_cast<std::size_t>(
                                               nt * pn + cc)));
                        }
                    }
                }
                float block_max = run_m[static_cast<std::size_t>(row)];
                for (int w = 0; w < wn; w++)
                    block_max = std::max(block_max, warp_max[w]);
                new_m[static_cast<std::size_t>(row)] = block_max;

                float lsum = 0.f;
                for (int col = 0; col < nr; col++) {
                    const float pexp = std::exp(
                        s_block.at(static_cast<std::size_t>(row),
                                   static_cast<std::size_t>(col)) -
                        block_max);
                    // P is written to sAcc in half precision (tiled_copy
                    // r2s), then reloaded for the PV MMA.
                    s_acc.at(static_cast<std::size_t>(row),
                             static_cast<std::size_t>(col)) = Half(pexp);
                    lsum += Half(pexp).toFloat();
                }
                block_l[static_cast<std::size_t>(row)] = lsum;
            }
        } else {
            // Broken path (Table III row 2): each warp normalizes with its
            // own local max and the partial sums merge without rescaling.
            for (int row = 0; row < m_tile; row++) {
                float m_prev = run_m[static_cast<std::size_t>(row)];
                float best = m_prev;
                float lsum = 0.f;
                for (int w = 0; w < wn; w++) {
                    float wmax = -std::numeric_limits<float>::infinity();
                    for (int nt = w; nt < n_tiles; nt += wn)
                        for (int cc = 0; cc < pn; cc++)
                            wmax = std::max(
                                wmax, s_block.at(static_cast<std::size_t>(row),
                                                 static_cast<std::size_t>(
                                                     nt * pn + cc)));
                    best = std::max(best, wmax);
                    for (int nt = w; nt < n_tiles; nt += wn) {
                        for (int cc = 0; cc < pn; cc++) {
                            const float pexp = std::exp(
                                s_block.at(static_cast<std::size_t>(row),
                                           static_cast<std::size_t>(
                                               nt * pn + cc)) -
                                wmax); // wrong: local max, not global
                            s_acc.at(static_cast<std::size_t>(row),
                                     static_cast<std::size_t>(nt * pn + cc)) =
                                Half(pexp);
                            lsum += Half(pexp).toFloat();
                        }
                    }
                }
                new_m[static_cast<std::size_t>(row)] = best;
                block_l[static_cast<std::size_t>(row)] = lsum;
            }
        }

        // ---- O_block = P V via A fragments reloaded from sAcc. -----------
        Tensor<float> o_block({static_cast<std::size_t>(m_tile),
                               static_cast<std::size_t>(d)});
        const int k_tiles_tok = nr / pk;
        const int n_tiles_d = d / pn;
        for (int ntd = 0; ntd < n_tiles_d; ntd++) {
            const int vgroup = ntd / r;
            const int vp = ntd % r;
            WarpFragment<float> acc = sim::makeFragment<float>();
            for (int ktt = 0; ktt < k_tiles_tok; ktt++) {
                const WarpFragment<Half> p_frag =
                    loadFragment(la, s_acc, 0, ktt * pk);
                auto vparam_of = [&](int row, int col) {
                    // B operand is V: row = token, col = channel.
                    return valueParams(vb, cfg, row, col);
                };
                const WarpFragment<Half> v_frag = dequantBFragment(
                    vlay, vb.units, ktt, vgroup, vp, vparam_of);
                acc = mmaSync(shape, p_frag, v_frag, acc);
            }
            storeAccumFragment(lc, acc, o_block, 0, ntd * pn);
        }

        // ---- Online merge with the running state. ------------------------
        for (int row = 0; row < m_tile; row++) {
            const std::size_t rr = static_cast<std::size_t>(row);
            const float rescale =
                run_m[rr] == -std::numeric_limits<float>::infinity()
                    ? 0.f
                    : std::exp(run_m[rr] - new_m[rr]);
            run_l[rr] = run_l[rr] * rescale + block_l[rr];
            for (int c = 0; c < d; c++) {
                run_o.at(rr, static_cast<std::size_t>(c)) =
                    run_o.at(rr, static_cast<std::size_t>(c)) * rescale +
                    o_block.at(rr, static_cast<std::size_t>(c));
            }
            run_m[rr] = new_m[rr];
        }
    }

    // ---- Residual tail: FP16 FlashDecoding-style pass, merged online. ----
    const int res_len = cache.residualLength();
    if (res_len > 0) {
        const Tensor<Half>& kr = cache.residualKeys();
        const Tensor<Half>& vr = cache.residualValues();
        for (int row = 0; row < m_tile; row++) {
            const std::size_t rr = static_cast<std::size_t>(row);
            float bmax = -std::numeric_limits<float>::infinity();
            std::vector<float> logits(static_cast<std::size_t>(res_len));
            for (int t = 0; t < res_len; t++) {
                float s = 0.f;
                for (int c = 0; c < d; c++) {
                    s += q_pad.at(rr, static_cast<std::size_t>(c)).toFloat() *
                         kr.at(static_cast<std::size_t>(t),
                               static_cast<std::size_t>(c))
                             .toFloat();
                }
                logits[static_cast<std::size_t>(t)] = s * scale;
                bmax = std::max(bmax, logits[static_cast<std::size_t>(t)]);
            }
            const float nm = std::max(run_m[rr], bmax);
            const float rescale =
                run_m[rr] == -std::numeric_limits<float>::infinity()
                    ? 0.f
                    : std::exp(run_m[rr] - nm);
            run_l[rr] *= rescale;
            for (int c = 0; c < d; c++)
                run_o.at(rr, static_cast<std::size_t>(c)) *= rescale;
            for (int t = 0; t < res_len; t++) {
                const float pexp =
                    std::exp(logits[static_cast<std::size_t>(t)] - nm);
                run_l[rr] += pexp;
                for (int c = 0; c < d; c++) {
                    run_o.at(rr, static_cast<std::size_t>(c)) +=
                        pexp * vr.at(static_cast<std::size_t>(t),
                                     static_cast<std::size_t>(c))
                                   .toFloat();
                }
            }
            run_m[rr] = nm;
        }
    }

    PackingKernelResult result;
    result.out.reset({static_cast<std::size_t>(m_tile),
                      static_cast<std::size_t>(d)});
    for (int row = 0; row < m_tile; row++) {
        const std::size_t rr = static_cast<std::size_t>(row);
        const float inv = run_l[rr] > 0.f ? 1.0f / run_l[rr] : 0.f;
        for (int c = 0; c < d; c++) {
            result.out.at(rr, static_cast<std::size_t>(c)) =
                run_o.at(rr, static_cast<std::size_t>(c)) * inv;
        }
    }
    result.valid = valid && layout_ok;
    return result;
}

Tensor<float>
fusedPackedAttention(const Tensor<Half>& q_tile,
                     const kv::PackedHeadCache& cache, float scale,
                     exec::ThreadPool* pool)
{
    const int d = cache.headDim();
    const int gq = static_cast<int>(q_tile.dim(0));
    BITDEC_ASSERT(gq >= 1 && gq <= 16, "query tile must fit one m16 tile");
    BITDEC_ASSERT(static_cast<int>(q_tile.dim(1)) == d, "query width mismatch");
    const int nr = cache.residualBlockSize();
    const int bits = cache.config().bits;
    const std::size_t dd = static_cast<std::size_t>(d);

    // Q converts once, in bulk.
    std::vector<float> qf(static_cast<std::size_t>(gq) * dd);
    toFloat(q_tile.data(), qf.data(), qf.size());

    const auto& k_blocks = cache.keyBlocks();
    const auto& v_blocks = cache.valueBlocks();
    const int n_blocks = static_cast<int>(k_blocks.size());
    const int n_chunks = (n_blocks + kChunkBlocks - 1) / kChunkBlocks;

    std::vector<exec::SoftmaxPartial> parts(static_cast<std::size_t>(n_chunks));

    exec::parallelFor(pool, static_cast<std::size_t>(n_chunks), [&](
                                                                    std::size_t
                                                                        ci) {
        exec::SoftmaxPartial& st = parts[ci];
        st.init(gq, d);

        // Reusable scratch: one dequantized [Nr x d] tile each for K and V.
        // Thread-local, grow-only — zero allocations in steady state.
        thread_local std::vector<float> kd, vd;
        const std::size_t tile = static_cast<std::size_t>(nr) * dd;
        if (kd.size() < tile) {
            kd.resize(tile);
            vd.resize(tile);
        }

        const int b0 = static_cast<int>(ci) * kChunkBlocks;
        const int b1 = std::min(n_blocks, b0 + kChunkBlocks);
        for (int blk = b0; blk < b1; blk++) {
            const kv::PackedBlock& kb = k_blocks[static_cast<std::size_t>(blk)];
            const kv::PackedBlock& vb = v_blocks[static_cast<std::size_t>(blk)];
            exec::dequantBlock(kb.units, cache.keyRoutes(), kb.dequant_lut,
                               bits, kd.data());
            exec::dequantBlock(vb.units, cache.valueRoutes(), vb.dequant_lut,
                               bits, vd.data());
            // P rounds through half precision exactly like the sAcc
            // round trip (round_p = true).
            exec::foldTile(qf.data(), gq, d, kd.data(), vd.data(), nr, scale,
                           st, /*round_p=*/true);
        }
    });

    // Deterministic reduction: merge chunk partials sequentially in chunk
    // order (the split-KV log-sum-exp combine).
    exec::SoftmaxPartial run = exec::mergePartials(parts, gq, d);

    // FP16 residual tail, merged online — same arithmetic as the reference
    // kernel's residual pass (plain float P, no half rounding).
    const int res_len = cache.residualLength();
    if (res_len > 0) {
        const std::size_t live = static_cast<std::size_t>(res_len) * dd;
        std::vector<float> krf(live), vrf(live);
        toFloat(cache.residualKeys().data(), krf.data(), live);
        toFloat(cache.residualValues().data(), vrf.data(), live);
        exec::foldTile(qf.data(), gq, d, krf.data(), vrf.data(), res_len,
                       scale, run);
    }

    return exec::finalizePartial(run, gq, d);
}

Tensor<float>
fusedPackedAttentionSimd(const Tensor<Half>& q_tile,
                         const kv::PackedHeadCache& cache, float scale,
                         exec::simd::Level level, exec::ThreadPool* pool)
{
    namespace simd = exec::simd;
    const simd::KernelTable* kt = simd::kernels(level);
    if (kt == nullptr)
        BITDEC_FATAL("SIMD level '", simd::toString(level),
                     "' has no kernels on this host (detected CPU features: ",
                     simd::describeCpuFeatures(), ")");

    const int d = cache.headDim();
    const int gq = static_cast<int>(q_tile.dim(0));
    BITDEC_ASSERT(gq >= 1 && gq <= 16, "query tile must fit one m16 tile");
    BITDEC_ASSERT(static_cast<int>(q_tile.dim(1)) == d, "query width mismatch");
    const int nr = cache.residualBlockSize();
    const int bits = cache.config().bits;
    const std::size_t dd = static_cast<std::size_t>(d);

    std::vector<float> qf(static_cast<std::size_t>(gq) * dd);
    kt->convert_rows(q_tile.data(), qf.size(), qf.data());

    const auto& k_blocks = cache.keyBlocks();
    const auto& v_blocks = cache.valueBlocks();
    const simd::LinearDequantPlan& kplan = cache.keyLinearPlan();
    const simd::LinearDequantPlan& vplan = cache.valueLinearPlan();
    const int n_blocks = static_cast<int>(k_blocks.size());
    const int n_chunks = (n_blocks + kChunkBlocks - 1) / kChunkBlocks;

    std::vector<exec::SoftmaxPartial> parts(static_cast<std::size_t>(n_chunks));

    exec::parallelFor(pool, static_cast<std::size_t>(n_chunks),
                      [&](std::size_t ci) {
        exec::SoftmaxPartial& st = parts[ci];
        st.init(gq, d);

        // Same scratch discipline as the scalar twin, but K dequantizes
        // channel-major ([d x Nr], token stride nr) straight through the
        // remapped linear plan — no transpose pass.
        thread_local std::vector<float> kd, vd, s;
        const std::size_t tile = static_cast<std::size_t>(nr) * dd;
        if (kd.size() < tile) {
            kd.resize(tile);
            vd.resize(tile);
        }
        if (s.size() < static_cast<std::size_t>(nr))
            s.resize(static_cast<std::size_t>(nr));

        const int b0 = static_cast<int>(ci) * kChunkBlocks;
        const int b1 = std::min(n_blocks, b0 + kChunkBlocks);
        for (int blk = b0; blk < b1; blk++) {
            const kv::PackedBlock& kb = k_blocks[static_cast<std::size_t>(blk)];
            const kv::PackedBlock& vb = v_blocks[static_cast<std::size_t>(blk)];
            kt->dequant_linear(kb.units.data(), kplan.unit.data(),
                               kplan.shift.data(), kplan.param.data(),
                               kplan.size(), bits, kb.dequant_lut_f32.data(),
                               kd.data());
            kt->dequant_linear(vb.units.data(), vplan.unit.data(),
                               vplan.shift.data(), vplan.param.data(),
                               vplan.size(), bits, vb.dequant_lut_f32.data(),
                               vd.data());
            kt->fold_tile(qf.data(), gq, d, kd.data(), /*t_stride=*/nr,
                          vd.data(), nr, scale, st.m.data(), st.l.data(),
                          st.acc.data(), s.data(), /*round_p=*/true);
        }
    });

    exec::SoftmaxPartial run = exec::mergePartials(parts, gq, d);

    const int res_len = cache.residualLength();
    if (res_len > 0) {
        const std::size_t live = static_cast<std::size_t>(res_len) * dd;
        std::vector<float> krT(live), vrf(live),
            rs(static_cast<std::size_t>(res_len));
        kt->convert_transpose(cache.residualKeys().data(), res_len, d,
                              krT.data(), res_len);
        kt->convert_rows(cache.residualValues().data(), live, vrf.data());
        kt->fold_tile(qf.data(), gq, d, krT.data(), res_len, vrf.data(),
                      res_len, scale, run.m.data(), run.l.data(),
                      run.acc.data(), rs.data(), /*round_p=*/false);
    }

    return exec::finalizePartial(run, gq, d);
}

} // namespace bitdec::core
