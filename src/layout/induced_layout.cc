#include "layout/induced_layout.h"

#include "common/logging.h"
#include "quant/packing.h"

namespace bitdec::layout {

InducedLayout::InducedLayout(const WarpTiling& tiling, int bits, int k_rows,
                             int n_cols)
    : tiling_(tiling), bits_(bits), k_rows_(k_rows), n_cols_(n_cols)
{
    BITDEC_ASSERT(bits == 2 || bits == 4, "induced layout supports 4/2 bits");
    const int pk = tiling.pk();
    const int pn = tiling.pn();
    const int r = tilesPerUnit();
    BITDEC_ASSERT(k_rows % pk == 0, "K rows ", k_rows,
                  " not a multiple of the MMA K extent ", pk);
    BITDEC_ASSERT(n_cols % (pn * r) == 0, "N cols ", n_cols,
                  " not a multiple of Pn*R = ", pn * r,
                  " (residual block misalignment)");
    k_tiles_ = k_rows / pk;
    n_groups_ = n_cols / (pn * r);
    pairs_per_lane_ = pk / 8; // 2 register pairs for k16, 1 for k8
}

std::size_t
InducedLayout::numUnits() const
{
    return static_cast<std::size_t>(k_tiles_) *
           static_cast<std::size_t>(n_groups_) * sim::kWarpSize *
           static_cast<std::size_t>(pairs_per_lane_);
}

std::size_t
InducedLayout::unitSlot(const UnitId& id) const
{
    BITDEC_ASSERT(id.ktile >= 0 && id.ktile < k_tiles_, "ktile out of range");
    BITDEC_ASSERT(id.ngroup >= 0 && id.ngroup < n_groups_,
                  "ngroup out of range");
    BITDEC_ASSERT(id.lane >= 0 && id.lane < sim::kWarpSize,
                  "lane out of range");
    BITDEC_ASSERT(id.pair >= 0 && id.pair < pairs_per_lane_,
                  "pair out of range");
    return ((static_cast<std::size_t>(id.ktile) *
                 static_cast<std::size_t>(n_groups_) +
             static_cast<std::size_t>(id.ngroup)) *
                sim::kWarpSize +
            static_cast<std::size_t>(id.lane)) *
               static_cast<std::size_t>(pairs_per_lane_) +
           static_cast<std::size_t>(id.pair);
}

CodeCoord
InducedLayout::codeCoord(const UnitId& id, int i) const
{
    BITDEC_ASSERT(i >= 0 && i < codesPerUnit(), "code index out of range");
    const int t = id.lane % 4;  // thread-in-group: row pair selector
    const int g = id.lane / 4;  // group: column within the tile
    const int p = i / 2;        // tile index within the unit's group
    const int hi = i % 2;       // low/high row of the register pair

    const int row = id.ktile * tiling_.pk() + id.pair * 8 + 2 * t + hi;
    const int col = (id.ngroup * tilesPerUnit() + p) * tiling_.pn() + g;
    return {row, col};
}

void
InducedLayout::locate(int row, int col, UnitId& id_out, int& code_out) const
{
    BITDEC_ASSERT(row >= 0 && row < k_rows_ && col >= 0 && col < n_cols_,
                  "coordinate out of range");
    const int pk = tiling_.pk();
    const int r = tilesPerUnit();

    id_out.ktile = row / pk;
    const int row_in = row % pk;
    id_out.pair = row_in / 8;
    const int t = (row_in % 8) / 2;
    const int hi = row_in % 2;
    const int g = col % tiling_.pn();
    const int ntile = col / tiling_.pn();
    id_out.ngroup = ntile / r;
    const int p = ntile % r;
    id_out.lane = g * 4 + t;
    code_out = 2 * p + hi;
}

std::vector<std::uint32_t>
packInduced(const InducedLayout& layout, const Tensor<std::uint8_t>& codes)
{
    std::vector<std::uint32_t> units(layout.numUnits());
    std::uint8_t buf[16];
    for (int kt = 0; kt < layout.numKTiles(); kt++) {
        for (int ng = 0; ng < layout.numNGroups(); ng++) {
            for (int lane = 0; lane < sim::kWarpSize; lane++) {
                for (int pr = 0; pr < layout.pairsPerLane(); pr++) {
                    const UnitId id{kt, ng, lane, pr};
                    for (int i = 0; i < layout.codesPerUnit(); i++) {
                        const CodeCoord c = layout.codeCoord(id, i);
                        buf[i] = codes.at(static_cast<std::size_t>(c.row),
                                          static_cast<std::size_t>(c.col));
                    }
                    units[layout.unitSlot(id)] = quant::packWord(
                        buf, layout.bits(), quant::PackOrder::Interleaved);
                }
            }
        }
    }
    return units;
}

std::vector<std::uint32_t>
packContinuous(int bits, const Tensor<std::uint8_t>& codes)
{
    const int per_word = quant::codesPerWord(bits);
    const std::size_t total = codes.dim(0) * codes.dim(1);
    BITDEC_ASSERT(total % static_cast<std::size_t>(per_word) == 0,
                  "matrix size not a multiple of the word capacity");
    std::vector<std::uint32_t> words(total / static_cast<std::size_t>(per_word));
    std::uint8_t buf[16];
    std::size_t idx = 0;
    for (std::size_t w = 0; w < words.size(); w++) {
        for (int i = 0; i < per_word; i++, idx++) {
            buf[i] = codes.at(idx / codes.dim(1), idx % codes.dim(1));
        }
        words[w] = quant::packWord(buf, bits, quant::PackOrder::Linear);
    }
    return words;
}

Tensor<std::uint8_t>
unpackInduced(const InducedLayout& layout,
              const std::vector<std::uint32_t>& units)
{
    BITDEC_ASSERT(units.size() == layout.numUnits(),
                  "unit buffer size mismatch");
    Tensor<std::uint8_t> codes(
        {static_cast<std::size_t>(layout.numKTiles() * layout.tiling().pk()),
         static_cast<std::size_t>(layout.numNGroups() *
                                  layout.tilesPerUnit() *
                                  layout.tiling().pn())});
    std::uint8_t buf[16];
    for (int kt = 0; kt < layout.numKTiles(); kt++) {
        for (int ng = 0; ng < layout.numNGroups(); ng++) {
            for (int lane = 0; lane < sim::kWarpSize; lane++) {
                for (int pr = 0; pr < layout.pairsPerLane(); pr++) {
                    const UnitId id{kt, ng, lane, pr};
                    quant::unpackWord(units[layout.unitSlot(id)],
                                      layout.bits(),
                                      quant::PackOrder::Interleaved, buf);
                    for (int i = 0; i < layout.codesPerUnit(); i++) {
                        const CodeCoord c = layout.codeCoord(id, i);
                        codes.at(static_cast<std::size_t>(c.row),
                                 static_cast<std::size_t>(c.col)) = buf[i];
                    }
                }
            }
        }
    }
    return codes;
}

} // namespace bitdec::layout
