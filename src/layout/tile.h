/**
 * @file
 * Warp-tiling descriptors and the residual-block sizing rule (Eq. 1).
 */
#ifndef BITDEC_LAYOUT_TILE_H
#define BITDEC_LAYOUT_TILE_H

#include "gpusim/fragment.h"

namespace bitdec::layout {

/**
 * Warp partitioning of an attention thread block.
 *
 * BitDecoding's key scheduling choice (Section IV-B) is wm = 1 with a wide
 * wn: the decode query tile is short (after query transformation it is at
 * most gq rows), so all warps spread along the KV (N) dimension, giving
 * the scheduler independent dequantization streams.
 */
struct WarpTiling
{
    sim::MmaShape mma = sim::MmaShape::M16N8K16;
    int wm = 1; //!< warps along the query (M) dimension
    int wn = 4; //!< warps along the KV (N) dimension

    /** N-extent of one MMA tile (Pn in the paper). */
    int
    pn() const
    {
        return 8; // both m16n8k8 and m16n8k16 have n = 8
    }

    /** K-extent of one MMA tile. */
    int
    pk() const
    {
        return mma == sim::MmaShape::M16N8K16 ? 16 : 8;
    }

    /** M-extent of one MMA tile. */
    int
    pm() const
    {
        return 16;
    }

    /** Total warps per CTA. */
    int warps() const { return wm * wn; }
};

/**
 * Residual block size Nr = Pn * Wn * R (Eq. 1): the number of tokens whose
 * packed codes exactly fill every warp's Tensor-Core fragments.
 *
 * @param tiling    warp partitioning
 * @param bits      quantization bit-width (beta)
 * @param word_bits packed word size (omega, 16 for INT16 storage)
 */
int residualBlockSize(const WarpTiling& tiling, int bits, int word_bits = 16);

} // namespace bitdec::layout

#endif // BITDEC_LAYOUT_TILE_H
