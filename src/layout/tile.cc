#include "layout/tile.h"

#include "common/logging.h"

namespace bitdec::layout {

int
residualBlockSize(const WarpTiling& tiling, int bits, int word_bits)
{
    BITDEC_ASSERT(bits > 0 && word_bits % bits == 0,
                  "word size must be a multiple of the bit width");
    const int packing_ratio = word_bits / bits; // R = omega / beta
    return tiling.pn() * tiling.wn * packing_ratio;
}

} // namespace bitdec::layout
