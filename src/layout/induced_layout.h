/**
 * @file
 * Layout induction: hardware instructions define the packing layout.
 *
 * The paper's central insight (Section IV-A): when each thread quantizes
 * and packs the fragment values *it already holds* after an ldmatrix load,
 * the packed words implicitly preserve the Tensor-Core interleaved layout.
 * A consumer kernel that mirrors the same instruction configuration
 * (ldmatrix variant, mma variant, warp tiling) unpacks values that are
 * already in valid MMA register positions — no global reshape.
 *
 * This module makes that statement executable. An InducedLayout maps
 *   (k-tile, n-tile-group, lane, register-pair, tile-within-group)
 * to the logical (row, col) coordinates of a B operand, and assigns every
 * packed 32-bit unit a canonical storage slot. The Residual Kernel writes
 * through the map; the Packing Kernel reads through the same map. A
 * mismatched producer (e.g. the naive "continuous packing" baseline that
 * stores codes in row-major token order) yields exactly the misaligned
 * registers of Fig. 3b.
 *
 * One 32-bit unit holds, for a fixed lane and register-pair slot, the codes
 * of R consecutive N-tiles (R = 16/bits per 16-bit lane): extraction pair p
 * of the unit is the half2 register (slot values at tile p) that mma.sync
 * consumes directly.
 */
#ifndef BITDEC_LAYOUT_INDUCED_LAYOUT_H
#define BITDEC_LAYOUT_INDUCED_LAYOUT_H

#include <cstdint>
#include <vector>

#include "gpusim/fragment.h"
#include "layout/tile.h"

namespace bitdec::layout {

/** Identifies one packed 32-bit unit within a K/V block. */
struct UnitId
{
    int ktile;  //!< which 16-row K tile (hidden-dim tile for Keys)
    int ngroup; //!< which group of R consecutive N tiles
    int lane;   //!< warp lane that owns the unit
    int pair;   //!< register-pair slot: 0 = (b0,b1), 1 = (b2,b3)
};

/** Logical matrix coordinate of one code inside a unit. */
struct CodeCoord
{
    int row; //!< row in the (K x N) operand matrix
    int col; //!< column in the operand matrix
};

/**
 * Induced packing layout for a B operand of shape [k_rows x n_cols].
 *
 * k_rows and n_cols must be multiples of the MMA tile extents; n_cols must
 * additionally be a multiple of pn * R so every unit is full — that is
 * exactly the residual-block alignment Eq. 1 guarantees.
 */
class InducedLayout
{
  public:
    /**
     * @param tiling warp tiling (fixes the mma variant)
     * @param bits   code width (4 or 2)
     * @param k_rows operand rows (K dimension of the MMA)
     * @param n_cols operand columns (N dimension)
     */
    InducedLayout(const WarpTiling& tiling, int bits, int k_rows, int n_cols);

    /** Codes per 32-bit unit (2 lanes x R fields). */
    int codesPerUnit() const { return 32 / bits_; }

    /** N-tiles covered by one unit (R = 16 / bits). */
    int tilesPerUnit() const { return 16 / bits_; }

    /** Register pairs per lane per tile (2 for m16n8k16 B fragments). */
    int pairsPerLane() const { return pairs_per_lane_; }

    /** Number of 16-row K tiles. */
    int numKTiles() const { return k_tiles_; }

    /** Number of N-tile groups (each spanning pn * R columns). */
    int numNGroups() const { return n_groups_; }

    /** Total packed 32-bit units in the block. */
    std::size_t numUnits() const;

    /** Canonical flat storage slot of a unit. */
    std::size_t unitSlot(const UnitId& id) const;

    /**
     * Logical coordinate of logical-code index @p i of unit @p id.
     * Codes are ordered (tile 0: lo, hi), (tile 1: lo, hi), ... — the order
     * in which extraction pairs emerge from the lop3 fast path.
     */
    CodeCoord codeCoord(const UnitId& id, int i) const;

    /** Inverse: the unit and code index that hold coordinate (row, col). */
    void locate(int row, int col, UnitId& id_out, int& code_out) const;

    /** Bit width of the codes. */
    int bits() const { return bits_; }

    /** The warp tiling this layout was induced from. */
    const WarpTiling& tiling() const { return tiling_; }

  private:
    WarpTiling tiling_;
    int bits_;
    int k_rows_;
    int n_cols_;
    int k_tiles_;
    int n_groups_;
    int pairs_per_lane_;
};

/**
 * Packs a quantized B-operand code matrix [k_rows x n_cols] into induced-
 * layout units (the Residual Kernel's store pattern). Within each unit the
 * fields follow quant::PackOrder::Interleaved, which is what makes the
 * lop3 extraction emit ready-to-use half2 registers.
 */
std::vector<std::uint32_t> packInduced(const InducedLayout& layout,
                                       const Tensor<std::uint8_t>& codes);

/**
 * Naive continuous packing (the ablation baseline): codes stored row-major
 * in token order, 32/bits per word, no layout awareness.
 */
std::vector<std::uint32_t> packContinuous(int bits,
                                          const Tensor<std::uint8_t>& codes);

/**
 * Unpacks induced-layout units back to a code matrix (reference inverse;
 * the Packing Kernel instead consumes units register-by-register).
 */
Tensor<std::uint8_t> unpackInduced(const InducedLayout& layout,
                                   const std::vector<std::uint32_t>& units);

} // namespace bitdec::layout

#endif // BITDEC_LAYOUT_INDUCED_LAYOUT_H
