/**
 * @file
 * Numerically trustworthy attention references and online-softmax
 * primitives shared by the functional kernels.
 */
#ifndef BITDEC_ATTENTION_REFERENCE_H
#define BITDEC_ATTENTION_REFERENCE_H

#include <vector>

#include "common/half.h"
#include "common/tensor.h"

namespace bitdec::attn {

/**
 * FP32 reference attention for one KV head group.
 *
 * @param q     [gq x d] query rows (after query transformation)
 * @param k     [L x d] keys
 * @param v     [L x d] values
 * @param scale logit scale (usually 1/sqrt(d))
 * @return      [gq x d] output in FP32
 */
Tensor<float> referenceAttention(const Tensor<Half>& q, const Tensor<Half>& k,
                                 const Tensor<Half>& v, float scale);

/**
 * Running state of one online-softmax row (FlashAttention recurrence):
 * m = running max, l = running exp-sum, acc = unnormalized output row.
 */
struct OnlineSoftmaxRow
{
    float m;
    float l;
    std::vector<float> acc;

    /** Initializes an empty row of width @p d. */
    explicit OnlineSoftmaxRow(int d);

    /**
     * Folds one block of scores and value rows into the state.
     * @param scores block logits (already scaled)
     * @param v      [block x d] value rows
     */
    void update(const std::vector<float>& scores, const Tensor<Half>& v,
                int v_row0);

    /** Final normalized output row. */
    std::vector<float> finalize() const;
};

/**
 * Merges two online-softmax partial states (split-KV combine step):
 * the standard (m, l, acc) log-sum-exp merge.
 */
OnlineSoftmaxRow mergeSoftmaxRows(const OnlineSoftmaxRow& a,
                                  const OnlineSoftmaxRow& b);

/** Largest |a - b| over two same-shaped FP32 matrices. */
float maxAbsDiff(const Tensor<float>& a, const Tensor<float>& b);

/** Largest |a - b| / (|b| + eps) over two matrices. */
float maxRelDiff(const Tensor<float>& a, const Tensor<float>& b,
                 float eps = 1e-5f);

} // namespace bitdec::attn

#endif // BITDEC_ATTENTION_REFERENCE_H
