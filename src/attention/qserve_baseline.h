/**
 * @file
 * QServe/Atom-style baseline: fused low-bit attention on CUDA cores only.
 *
 * These systems fuse dequantization into a FlashAttention-style kernel but
 * execute both the dequant and the matrix work as FMA GEMVs on CUDA cores,
 * one query head at a time. That leaves Tensor Cores idle, re-streams KV
 * data once per query head under GQA, and makes dequantization compete
 * with the GEMV for the same issue slots (Section II, second limitation).
 */
#ifndef BITDEC_ATTENTION_QSERVE_BASELINE_H
#define BITDEC_ATTENTION_QSERVE_BASELINE_H

#include "attention/reference.h"
#include "attention/workloads.h"
#include "gpusim/timing.h"
#include "quant/int_quant.h"

namespace bitdec::attn {

/**
 * Functional fused CUDA-core attention: per query head, stream the
 * quantized cache, dequantize inline and accumulate with scalar FMAs
 * (online softmax, no split). Numerically equals reference attention over
 * dequantized tensors.
 */
Tensor<float> cudaCoreFusedAttention(const Tensor<Half>& q,
                                     const quant::QuantizedMatrix& kq,
                                     const quant::QuantizedMatrix& vq,
                                     float scale);

/** Baseline flavor: QServe supports GQA and pages; Atom is MHA-only. */
enum class CudaCoreSystem { QServe, Atom };

/**
 * Timing of the fused CUDA-core kernel.
 *
 * @param system which baseline's constants to use
 * @param bits   4 for both systems (Atom is 4-bit only)
 */
sim::SequenceTiming cudaCoreFusedTime(const sim::GpuArch& arch,
                                      const DecodeShape& shape,
                                      CudaCoreSystem system, int bits);

/** True when the system can run the given shape (Atom rejects GQA). */
bool cudaCoreSystemSupports(CudaCoreSystem system, const DecodeShape& shape);

} // namespace bitdec::attn

#endif // BITDEC_ATTENTION_QSERVE_BASELINE_H
