/**
 * @file
 * KIVI-style baseline: non-fused low-bit KV attention.
 *
 * KIVI decomposes mixed-precision attention into standalone kernels
 * (dequantize K, QK^T, softmax, dequantize V, PV). The separated launches
 * round intermediate tensors through global memory, break on-chip reuse,
 * and — because the matmuls run per query head on the expanded tensors —
 * re-stream the KV data gq times under GQA (Section II, "Attention with
 * separated low-bit KV-cache kernels").
 */
#ifndef BITDEC_ATTENTION_KIVI_BASELINE_H
#define BITDEC_ATTENTION_KIVI_BASELINE_H

#include "attention/reference.h"
#include "attention/workloads.h"
#include "gpusim/timing.h"
#include "quant/int_quant.h"

namespace bitdec::attn {

/**
 * Functional KIVI attention: dequantizes the whole cache to FP16
 * workspaces, then runs dense attention — numerically this is reference
 * attention over the dequantized tensors, which is exactly what the
 * separated kernels compute.
 *
 * @param q  [gq x d] queries
 * @param kq quantized keys   (channel-wise in KIVI's configuration)
 * @param vq quantized values (tensor-wise per token)
 */
Tensor<float> kiviAttention(const Tensor<Half>& q,
                            const quant::QuantizedMatrix& kq,
                            const quant::QuantizedMatrix& vq, float scale);

/**
 * Timing of the five-kernel KIVI pipeline.
 *
 * @param bits 4 or 2
 */
sim::SequenceTiming kiviTime(const sim::GpuArch& arch, const DecodeShape& shape,
                             int bits);

/**
 * Transient FP16 workspace bytes the non-fused pipeline keeps live during
 * one forward pass (dequantized K/V for every layer plus score matrices);
 * the end-to-end model uses this for OOM detection — the lack of
 * block-tiling kernels is what makes KIVI fail at 128K (Fig. 12).
 *
 * @param layers model depth (workspaces persist across the pass)
 */
double kiviWorkspaceBytes(const DecodeShape& shape, int layers);

} // namespace bitdec::attn

#endif // BITDEC_ATTENTION_KIVI_BASELINE_H
