#include "attention/workloads.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace bitdec::attn {

const char*
toString(Scenario s)
{
    switch (s) {
      case Scenario::Single:
        return "Single";
      case Scenario::Batches:
        return "Batches";
      case Scenario::Pages:
        return "Pages";
      case Scenario::Serving:
        return "Serving";
    }
    return "unknown";
}

double
DecodeShape::fp16KvBytes() const
{
    return 2.0 * batch * num_kv_heads * seq_len * head_dim * 2.0;
}

double
DecodeShape::packedKvBytes(int bits) const
{
    return 2.0 * batch * num_kv_heads * seq_len * head_dim *
           (static_cast<double>(bits) / 8.0);
}

double
DecodeShape::metadataBytes(const quant::QuantConfig& config) const
{
    const double tokens = static_cast<double>(batch) * num_kv_heads * seq_len;
    // One half2 (4 bytes) per group. Key groups depend on granularity;
    // value groups are always tensor-wise along the hidden dim.
    double key_groups, value_groups;
    if (config.key_granularity == quant::Granularity::TensorWise)
        key_groups = tokens * (static_cast<double>(head_dim) /
                               config.group_size);
    else
        key_groups = tokens / config.group_size * head_dim;
    value_groups =
        tokens * (static_cast<double>(head_dim) / config.group_size);
    return (key_groups + value_groups) * 4.0;
}

double
DecodeShape::qoBytes() const
{
    // Q read + O write, FP16.
    return 2.0 * batch * num_q_heads * head_dim * 2.0;
}

int
chooseNumSplits(const sim::GpuArch& arch, const DecodeShape& shape)
{
    const int base_ctas = shape.batch * shape.num_kv_heads;
    const int want = std::max(1, arch.num_sms / std::max(1, base_ctas));
    const int max_by_len = std::max(1, shape.seq_len / 256);
    return std::clamp(want, 1, max_by_len);
}

double
l2RereadFactor(const sim::GpuArch& arch, double bytes_per_pass, int group_size)
{
    if (group_size <= 1)
        return 1.0;
    const double l2_bytes = arch.l2_mb * 1e6;
    // Fraction of a pass that must be re-fetched from DRAM on each of the
    // remaining (gq - 1) passes.
    const double miss =
        std::clamp(1.0 - l2_bytes / std::max(bytes_per_pass, 1.0), 0.0, 1.0);
    return 1.0 + (group_size - 1) * miss;
}

double
tcFlopsIssued(const DecodeShape& shape)
{
    const int m_tile = 16;
    const int m_tiles = (shape.groupSize() + m_tile - 1) / m_tile;
    // Two GEMMs (QK^T and PV), 2 FLOPs per MAC, m16 tiles padded.
    return 4.0 * shape.batch * shape.num_kv_heads * m_tiles * m_tile *
           static_cast<double>(shape.seq_len) * shape.head_dim;
}

double
splitWorkspaceBytes(const DecodeShape& shape, int splits)
{
    if (splits <= 1)
        return 0.0;
    // Per split and query head: partial O (d floats) + running (m, l).
    const double per_split =
        static_cast<double>(shape.batch) * shape.num_q_heads *
        (shape.head_dim * 4.0 + 8.0);
    // Written by the main kernel, read by the combine kernel.
    return 2.0 * splits * per_split;
}

sim::CudaCoreOps
softmaxOps(const DecodeShape& shape)
{
    sim::CudaCoreOps ops;
    const double scores =
        static_cast<double>(shape.batch) * shape.num_q_heads * shape.seq_len;
    ops.sfu = scores;        // exp
    ops.fma = 3.0 * scores;  // scale, running max/sum rescale, accumulate fix
    ops.alu = scores;        // max comparisons
    return ops;
}

} // namespace bitdec::attn
