#include "attention/flash_decoding.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace bitdec::attn {

Tensor<float>
flashDecodingAttention(const Tensor<Half>& q, const kv::Fp16HeadCache& cache,
                       float scale, int splits, exec::ThreadPool* pool)
{
    BITDEC_ASSERT(splits >= 1, "need at least one split");
    const std::size_t gq = q.dim(0);
    const std::size_t d = q.dim(1);
    const int len = cache.length();
    const Tensor<Half>& k = cache.keys();
    const Tensor<Half>& v = cache.values();

    const int per_split = (len + splits - 1) / std::max(splits, 1);
    Tensor<float> out({gq, d});

    exec::parallelFor(pool, gq, [&](std::size_t r) {
        // Reusable per-thread score buffer — no per-tile allocations.
        thread_local std::vector<float> scores;
        // Each split produces an independent partial state, exactly like
        // the parallel split CTAs; the combine merges them pairwise.
        OnlineSoftmaxRow merged(static_cast<int>(d));
        for (int s = 0; s < splits; s++) {
            const int t0 = s * per_split;
            const int t1 = std::min(len, t0 + per_split);
            if (t0 >= t1)
                continue;
            OnlineSoftmaxRow part(static_cast<int>(d));
            // Process the split in FlashAttention-style tiles of 128.
            for (int b0 = t0; b0 < t1; b0 += 128) {
                const int b1 = std::min(t1, b0 + 128);
                scores.assign(static_cast<std::size_t>(b1 - b0), 0.f);
                for (int t = b0; t < b1; t++) {
                    float sdot = 0.f;
                    for (std::size_t c = 0; c < d; c++) {
                        sdot += q.at(r, c).toFloat() *
                                k.at(static_cast<std::size_t>(t), c).toFloat();
                    }
                    scores[static_cast<std::size_t>(t - b0)] = sdot * scale;
                }
                part.update(scores, v, b0);
            }
            merged = mergeSoftmaxRows(merged, part);
        }
        const std::vector<float> row = merged.finalize();
        for (std::size_t c = 0; c < d; c++)
            out.at(r, c) = row[c];
    });
    return out;
}

sim::SequenceTiming
flashDecodingTime(const sim::GpuArch& arch, const DecodeShape& shape,
                  int version)
{
    BITDEC_ASSERT(version == 2 || version == 3, "unknown FlashDecoding version");
    if (version == 3)
        BITDEC_ASSERT(arch.has_wgmma, "v3 requires Hopper wgmma support");

    const int splits = chooseNumSplits(arch, shape);

    sim::KernelWorkload main;
    main.label = version == 3 ? "flash-decoding-v3" : "flash-decoding-v2";
    main.dram_read_bytes = shape.fp16KvBytes() + shape.qoBytes() / 2;
    main.dram_write_bytes =
        shape.qoBytes() / 2 + splitWorkspaceBytes(shape, splits) / 2;
    main.tc_flops_fp16 = tcFlopsIssued(shape);
    main.cuda = softmaxOps(shape);
    // K/V tiles stage through shared memory (write + ldmatrix read).
    main.smem_bytes = 2.0 * shape.fp16KvBytes();
    main.smem_conflict_factor = 1.0; // swizzled layouts
    main.ctas = shape.batch * shape.num_kv_heads * splits;
    main.warps_per_cta = 4;
    main.wn = 4;
    main.overlappable_cuda_fraction = 1.0;
    main.pipeline_fill_overhead = version == 3 ? 0.01 : 0.03;
    if (version == 3) {
        // wgmma + TMA sustain a higher fraction of peak; model as extra
        // effective TC throughput by shrinking issued time.
        main.tc_flops_fp16 /= 1.35;
        main.smem_bytes /= 2.0; // TMA writes smem directly, no reg bounce
    } else if (arch.has_wgmma) {
        // SM80-ISA kernels on Hopper pay the legacy-instruction penalty
        // (~35% sustained-throughput loss, Section III-A).
        main.dram_derate = 1.35;
    }
    if (isPaged(shape.scenario)) {
        // Page-table indirection costs one extra pointer load per page.
        const double pages = 2.0 * shape.batch * shape.num_kv_heads *
                             (static_cast<double>(shape.seq_len) /
                              shape.page_size);
        main.cuda.alu += pages * 2.0;
        main.dram_read_bytes += pages * 8.0;
    }

    std::vector<sim::KernelWorkload> seq{main};
    if (splits > 1) {
        sim::KernelWorkload combine;
        combine.label = "split-combine";
        combine.dram_read_bytes = splitWorkspaceBytes(shape, splits) / 2;
        combine.dram_write_bytes = shape.qoBytes() / 2;
        combine.cuda.fma = static_cast<double>(shape.batch) *
                           shape.num_q_heads * shape.head_dim * splits;
        combine.cuda.sfu = static_cast<double>(shape.batch) *
                           shape.num_q_heads * splits;
        combine.ctas = shape.batch * shape.num_q_heads;
        combine.warps_per_cta = 4;
        combine.wn = 4;
        seq.push_back(combine);
    }
    return resolveSequence(arch, seq);
}

} // namespace bitdec::attn
