#include "attention/qserve_baseline.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace bitdec::attn {

Tensor<float>
cudaCoreFusedAttention(const Tensor<Half>& q, const quant::QuantizedMatrix& kq,
                       const quant::QuantizedMatrix& vq, float scale)
{
    const std::size_t gq = q.dim(0);
    const std::size_t d = q.dim(1);
    const std::size_t len = kq.codes.dim(0);
    BITDEC_ASSERT(kq.codes.dim(1) == d && vq.codes.dim(0) == len &&
                  vq.codes.dim(1) == d,
                  "quantized cache shapes disagree");

    Tensor<float> out({gq, d});
    for (std::size_t r = 0; r < gq; r++) {
        // Streaming online softmax with inline dequantization — the fused
        // single-pass structure of the QServe kernel.
        float m = -std::numeric_limits<float>::infinity();
        float l = 0.f;
        std::vector<float> acc(d, 0.f);
        for (std::size_t t = 0; t < len; t++) {
            float s = 0.f;
            for (std::size_t c = 0; c < d; c++) {
                const float kval = quant::dequantizeValue(
                    kq.codes.at(t, c), kq.paramsFor(t, c));
                s += q.at(r, c).toFloat() * kval;
            }
            s *= scale;
            const float new_m = std::max(m, s);
            const float rescale =
                m == -std::numeric_limits<float>::infinity()
                    ? 0.f
                    : std::exp(m - new_m);
            const float p = std::exp(s - new_m);
            l = l * rescale + p;
            for (std::size_t c = 0; c < d; c++) {
                const float vval = quant::dequantizeValue(
                    vq.codes.at(t, c), vq.paramsFor(t, c));
                acc[c] = acc[c] * rescale + p * vval;
            }
            m = new_m;
        }
        for (std::size_t c = 0; c < d; c++)
            out.at(r, c) = l > 0.f ? acc[c] / l : 0.f;
    }
    return out;
}

bool
cudaCoreSystemSupports(CudaCoreSystem system, const DecodeShape& shape)
{
    if (system == CudaCoreSystem::Atom)
        return shape.groupSize() == 1; // Atom does not support GQA
    return true;
}

sim::SequenceTiming
cudaCoreFusedTime(const sim::GpuArch& arch, const DecodeShape& shape,
                  CudaCoreSystem system, int bits)
{
    BITDEC_ASSERT(cudaCoreSystemSupports(system, shape),
                  "system does not support this attention shape");
    quant::QuantConfig qc;
    qc.bits = bits;
    qc.key_granularity = system == CudaCoreSystem::QServe
                             ? quant::Granularity::TensorWise
                             : quant::Granularity::TensorWise;
    qc.group_size = 128;

    const double packed = shape.packedKvBytes(bits);
    const double meta = shape.metadataBytes(qc);
    // GEMV per query head: the low-bit stream is fetched once per query
    // head; L2 absorbs what fits.
    const double reread =
        l2RereadFactor(arch, (packed + meta) / 2, shape.groupSize());

    sim::KernelWorkload k;
    k.label = system == CudaCoreSystem::QServe ? "qserve-fused" : "atom-fused";
    k.dram_read_bytes = (packed + meta) * reread + shape.qoBytes() / 2;
    k.dram_write_bytes = shape.qoBytes() / 2;
    k.tc_flops_fp16 = 0; // the defining limitation: no Tensor-Core use

    const double elems = 2.0 * shape.batch * shape.num_kv_heads *
                         static_cast<double>(shape.seq_len) * shape.head_dim;
    // Dequant on the cvt path (per element: shift+mask+convert, then FMA),
    // repeated per query head for the K/V values each head consumes.
    const double dequant_elems = elems * shape.groupSize();
    // Unpack, convert, zero-subtract, scale and address math per code.
    k.cuda.alu = dequant_elems * (system == CudaCoreSystem::QServe ? 5.0 : 6.0);
    k.cuda.fma = dequant_elems;
    // GEMV multiply-accumulate work for both matmuls.
    k.cuda.fma += 2.0 * shape.batch * shape.num_q_heads *
                  static_cast<double>(shape.seq_len) * shape.head_dim;
    k.cuda += softmaxOps(shape);

    k.smem_bytes = (packed + meta); // staged tiles
    // Issue-limited streaming: the GEMV + inline-dequant loop sustains
    // about half the DRAM bandwidth of a tiled Tensor-Core kernel.
    k.dram_derate = 2.0;
    const int splits = chooseNumSplits(arch, shape);
    k.ctas = shape.batch * shape.num_kv_heads * splits;
    k.warps_per_cta = 4;
    k.wn = 4;
    // Dequant and GEMV share the CUDA pipe, so only memory overlap helps.
    k.overlappable_cuda_fraction = 0.55;
    k.pipeline_fill_overhead = 0.04;

    if (isPaged(shape.scenario)) {
        const double pages = 2.0 * shape.batch * shape.num_kv_heads *
                             (static_cast<double>(shape.seq_len) /
                              shape.page_size);
        k.cuda.alu += pages * 2.0;
        k.dram_read_bytes += pages * 8.0;
    }

    std::vector<sim::KernelWorkload> seq{k};
    if (splits > 1) {
        sim::KernelWorkload combine;
        combine.label = "split-combine";
        combine.dram_read_bytes = splitWorkspaceBytes(shape, splits) / 2;
        combine.dram_write_bytes = shape.qoBytes() / 2;
        combine.cuda.fma = static_cast<double>(shape.batch) *
                           shape.num_q_heads * shape.head_dim * splits;
        combine.ctas = shape.batch * shape.num_q_heads;
        combine.wn = 4;
        seq.push_back(combine);
    }
    return resolveSequence(arch, seq);
}

} // namespace bitdec::attn
