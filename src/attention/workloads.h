/**
 * @file
 * Shared decode-attention workload descriptors and byte/FLOP accounting
 * helpers used by every system's timing model (baselines and BitDecoding).
 */
#ifndef BITDEC_ATTENTION_WORKLOADS_H
#define BITDEC_ATTENTION_WORKLOADS_H

#include "gpusim/arch.h"
#include "gpusim/timing.h"
#include "quant/quant_params.h"

namespace bitdec::attn {

/** Kernel service scenario from the evaluation section. */
enum class Scenario
{
    Single,  //!< batch 1, long context
    Batches, //!< larger batch, padded contiguous caches
    Pages,   //!< paged KV management (vLLM-style)
    Serving, //!< continuous batching on paged KV (src/serving engine)
};

/** Returns a printable scenario name. */
const char* toString(Scenario s);

/** True for scenarios whose kernels traverse a page table. */
inline bool
isPaged(Scenario s)
{
    return s == Scenario::Pages || s == Scenario::Serving;
}

/** Shape of one decode-attention call (one layer, one step, full batch). */
struct DecodeShape
{
    int batch = 1;     //!< sequences decoded together
    int num_q_heads = 32;
    int num_kv_heads = 8;
    int head_dim = 128;
    int seq_len = 4096; //!< KV tokens per sequence
    Scenario scenario = Scenario::Single;
    int page_size = 64; //!< tokens per page in Pages mode

    /** Query heads per KV head (1 = MHA, >1 = GQA, = hq = MQA). */
    int groupSize() const { return num_q_heads / num_kv_heads; }

    /** FP16 bytes of the KV cache this call touches. */
    double fp16KvBytes() const;

    /** Packed low-bit KV bytes (data only). */
    double packedKvBytes(int bits) const;

    /** Scale/zero metadata bytes for the given quantization config. */
    double metadataBytes(const quant::QuantConfig& config) const;

    /** Bytes of query + output vectors. */
    double qoBytes() const;
};

/**
 * Split-KV partition count a FlashDecoding-style scheduler would pick:
 * enough splits to cover the SMs, but never below ~256 tokens per split.
 */
int chooseNumSplits(const sim::GpuArch& arch, const DecodeShape& shape);

/**
 * DRAM re-read factor for GEMV-per-query-head kernels (KIVI/QServe/Atom):
 * each of the gq query heads streams the same KV data; only the fraction
 * resident in L2 is deduplicated. Returns a multiplier >= 1 applied to the
 * KV bytes.
 *
 * @param bytes_per_pass KV bytes one pass streams (per layer step)
 */
double l2RereadFactor(const sim::GpuArch& arch, double bytes_per_pass,
                      int group_size);

/**
 * Tensor-Core FLOPs issued by a fused attention kernel: both GEMMs over
 * m16-row tiles (underfilled when the query group is narrow, which is why
 * MHA without query packing wastes Tensor-Core issue slots).
 */
double tcFlopsIssued(const DecodeShape& shape);

/** Split-combine workspace traffic (partial O, m, l per split). */
double splitWorkspaceBytes(const DecodeShape& shape, int splits);

/** Softmax special-function and rescale op counts. */
sim::CudaCoreOps softmaxOps(const DecodeShape& shape);

} // namespace bitdec::attn

#endif // BITDEC_ATTENTION_WORKLOADS_H
