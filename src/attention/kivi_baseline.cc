#include "attention/kivi_baseline.h"

#include "common/logging.h"

namespace bitdec::attn {

Tensor<float>
kiviAttention(const Tensor<Half>& q, const quant::QuantizedMatrix& kq,
              const quant::QuantizedMatrix& vq, float scale)
{
    const Tensor<Half> k = quant::dequantizeMatrix(kq);
    const Tensor<Half> v = quant::dequantizeMatrix(vq);
    return referenceAttention(q, k, v, scale);
}

sim::SequenceTiming
kiviTime(const sim::GpuArch& arch, const DecodeShape& shape, int bits)
{
    BITDEC_ASSERT(!isPaged(shape.scenario),
                  "KIVI has no paged-cache support");
    quant::QuantConfig qc;
    qc.bits = bits;
    qc.key_granularity = quant::Granularity::ChannelWise;
    qc.group_size = 32;

    const double packed = shape.packedKvBytes(bits);
    const double meta = shape.metadataBytes(qc);
    const double fp16_kv = shape.fp16KvBytes();
    const double elems = 2.0 * shape.batch * shape.num_kv_heads *
                         static_cast<double>(shape.seq_len) * shape.head_dim;
    const double scores =
        static_cast<double>(shape.batch) * shape.num_q_heads * shape.seq_len;
    const int elementwise_ctas = arch.num_sms * 4; // grid-stride kernels

    std::vector<sim::KernelWorkload> seq;

    // 1. Dequantize K to an FP16 workspace.
    sim::KernelWorkload dq_k;
    dq_k.label = "kivi-dequant-k";
    dq_k.dram_read_bytes = packed / 2 + meta / 2;
    dq_k.dram_write_bytes = fp16_kv / 2;
    dq_k.cuda.alu = elems / 2 * 2.0; // unpack shift+mask
    dq_k.cuda.fma = elems / 2;       // scale/zero FMA
    dq_k.ctas = elementwise_ctas;
    dq_k.wn = 4;
    seq.push_back(dq_k);

    // 2. QK^T as batched GEMV over the per-query-head expanded keys.
    // Under GQA the expansion re-streams K once per query head; only the
    // L2-resident fraction is deduplicated.
    const double reread =
        l2RereadFactor(arch, fp16_kv / 2, shape.groupSize());
    sim::KernelWorkload qk;
    qk.label = "kivi-qk-gemv";
    qk.dram_read_bytes = fp16_kv / 2 * reread + shape.qoBytes() / 2;
    qk.dram_write_bytes = scores * 4.0;
    qk.cuda.fma = static_cast<double>(shape.batch) * shape.num_q_heads *
                  shape.seq_len * shape.head_dim;
    qk.ctas = elementwise_ctas;
    qk.wn = 4;
    qk.overlappable_cuda_fraction = 0.7;
    seq.push_back(qk);

    // 3. Softmax over the materialized score matrix.
    sim::KernelWorkload sm;
    sm.label = "kivi-softmax";
    sm.dram_read_bytes = scores * 4.0;
    sm.dram_write_bytes = scores * 2.0;
    sm.cuda = softmaxOps(shape);
    sm.ctas = elementwise_ctas;
    sm.wn = 4;
    seq.push_back(sm);

    // 4. Dequantize V.
    sim::KernelWorkload dq_v = dq_k;
    dq_v.label = "kivi-dequant-v";
    seq.push_back(dq_v);

    // 5. PV as batched GEMV over the expanded values.
    sim::KernelWorkload pv;
    pv.label = "kivi-pv-gemv";
    pv.dram_read_bytes = fp16_kv / 2 * reread + scores * 2.0;
    pv.dram_write_bytes = shape.qoBytes() / 2;
    pv.cuda.fma = static_cast<double>(shape.batch) * shape.num_q_heads *
                  shape.seq_len * shape.head_dim;
    pv.ctas = elementwise_ctas;
    pv.wn = 4;
    pv.overlappable_cuda_fraction = 0.7;
    seq.push_back(pv);

    return resolveSequence(arch, seq);
}

double
kiviWorkspaceBytes(const DecodeShape& shape, int layers)
{
    // Dequantized FP16 K and V workspaces persist for the whole forward
    // pass (no block tiling releases them layer-by-layer), plus the FP32
    // score matrix per layer, plus the repeat_kv-style expansion the
    // per-query-head matmuls materialize for the live layer.
    const double per_layer_kv = shape.fp16KvBytes();
    const double per_layer_scores =
        static_cast<double>(shape.batch) * shape.num_q_heads * shape.seq_len *
        4.0;
    const double expanded_live = 2.0 * per_layer_kv * shape.groupSize();
    return layers * (per_layer_kv + per_layer_scores) + expanded_live;
}

} // namespace bitdec::attn
