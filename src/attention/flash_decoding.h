/**
 * @file
 * FlashDecoding baseline: fused FP16 attention with split-KV partitioning.
 *
 * This is the paper's FP16 speedup-normalization baseline
 * ("FlashDecoding-v2"); version 3 models the Hopper-specialized
 * FlashAttention-3 variant (wgmma + TMA + warp-specialized pipeline).
 */
#ifndef BITDEC_ATTENTION_FLASH_DECODING_H
#define BITDEC_ATTENTION_FLASH_DECODING_H

#include "attention/reference.h"
#include "attention/workloads.h"
#include "exec/thread_pool.h"
#include "gpusim/timing.h"
#include "kvcache/kv_cache.h"

namespace bitdec::attn {

/**
 * Functional FlashDecoding: split-KV online-softmax attention over an FP16
 * cache; partial states merge with the log-sum-exp combine. Numerically
 * equivalent to the reference up to FP accumulation order.
 *
 * Query rows are independent, so they optionally spread across the thread
 * pool; per-row output is computed by exactly one task, keeping results
 * bitwise identical for any thread count.
 *
 * @param q      [gq x d] queries
 * @param cache  FP16 KV cache of one head
 * @param scale  logit scale
 * @param splits split-KV partition count (>= 1)
 * @param pool   optional pool to spread query rows over; null = serial
 */
Tensor<float> flashDecodingAttention(const Tensor<Half>& q,
                                     const kv::Fp16HeadCache& cache,
                                     float scale, int splits,
                                     exec::ThreadPool* pool = nullptr);

/**
 * Timing model of the FlashDecoding kernel (plus the split-combine kernel
 * when splits > 1).
 *
 * @param version 2 for FlashDecoding-v2 (SM80 path), 3 for the Hopper
 *                FA-3-based variant (requires arch.has_wgmma)
 */
sim::SequenceTiming flashDecodingTime(const sim::GpuArch& arch,
                                      const DecodeShape& shape,
                                      int version = 2);

} // namespace bitdec::attn

#endif // BITDEC_ATTENTION_FLASH_DECODING_H
