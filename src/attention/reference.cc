#include "attention/reference.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace bitdec::attn {

Tensor<float>
referenceAttention(const Tensor<Half>& q, const Tensor<Half>& k,
                   const Tensor<Half>& v, float scale)
{
    BITDEC_ASSERT(q.rank() == 2 && k.rank() == 2 && v.rank() == 2,
                  "attention operands must be 2-D");
    const std::size_t gq = q.dim(0);
    const std::size_t d = q.dim(1);
    const std::size_t len = k.dim(0);
    BITDEC_ASSERT(k.dim(1) == d && v.dim(1) == d && v.dim(0) == len,
                  "attention operand shapes disagree");

    Tensor<float> out({gq, d});
    std::vector<float> logits(len);
    for (std::size_t r = 0; r < gq; r++) {
        float m = -std::numeric_limits<float>::infinity();
        for (std::size_t t = 0; t < len; t++) {
            float s = 0.f;
            for (std::size_t c = 0; c < d; c++)
                s += q.at(r, c).toFloat() * k.at(t, c).toFloat();
            logits[t] = s * scale;
            m = std::max(m, logits[t]);
        }
        float l = 0.f;
        for (std::size_t t = 0; t < len; t++) {
            logits[t] = std::exp(logits[t] - m);
            l += logits[t];
        }
        for (std::size_t c = 0; c < d; c++) {
            float acc = 0.f;
            for (std::size_t t = 0; t < len; t++)
                acc += logits[t] * v.at(t, c).toFloat();
            out.at(r, c) = acc / l;
        }
    }
    return out;
}

OnlineSoftmaxRow::OnlineSoftmaxRow(int d)
    : m(-std::numeric_limits<float>::infinity()),
      l(0.f),
      acc(static_cast<std::size_t>(d), 0.f)
{
}

void
OnlineSoftmaxRow::update(const std::vector<float>& scores, const Tensor<Half>& v,
                         int v_row0)
{
    float block_max = m;
    for (float s : scores)
        block_max = std::max(block_max, s);
    if (block_max == -std::numeric_limits<float>::infinity())
        return;
    const float rescale = std::exp(m - block_max);
    m = block_max;
    l *= rescale;
    for (auto& a : acc)
        a *= rescale;
    for (std::size_t i = 0; i < scores.size(); i++) {
        const float p = std::exp(scores[i] - m);
        l += p;
        for (std::size_t c = 0; c < acc.size(); c++) {
            acc[c] += p * v.at(static_cast<std::size_t>(v_row0) + i, c)
                              .toFloat();
        }
    }
}

std::vector<float>
OnlineSoftmaxRow::finalize() const
{
    std::vector<float> out(acc.size());
    const float inv = l > 0.f ? 1.0f / l : 0.f;
    for (std::size_t i = 0; i < acc.size(); i++)
        out[i] = acc[i] * inv;
    return out;
}

OnlineSoftmaxRow
mergeSoftmaxRows(const OnlineSoftmaxRow& a, const OnlineSoftmaxRow& b)
{
    BITDEC_ASSERT(a.acc.size() == b.acc.size(), "merge width mismatch");
    OnlineSoftmaxRow out(static_cast<int>(a.acc.size()));
    out.m = std::max(a.m, b.m);
    if (out.m == -std::numeric_limits<float>::infinity())
        return out;
    const float ra = std::exp(a.m - out.m);
    const float rb = std::exp(b.m - out.m);
    out.l = a.l * ra + b.l * rb;
    for (std::size_t i = 0; i < out.acc.size(); i++)
        out.acc[i] = a.acc[i] * ra + b.acc[i] * rb;
    return out;
}

float
maxAbsDiff(const Tensor<float>& a, const Tensor<float>& b)
{
    BITDEC_ASSERT(a.numel() == b.numel(), "shape mismatch");
    float err = 0.f;
    for (std::size_t i = 0; i < a.numel(); i++)
        err = std::max(err, std::fabs(a[i] - b[i]));
    return err;
}

float
maxRelDiff(const Tensor<float>& a, const Tensor<float>& b, float eps)
{
    BITDEC_ASSERT(a.numel() == b.numel(), "shape mismatch");
    float err = 0.f;
    for (std::size_t i = 0; i < a.numel(); i++)
        err = std::max(err, std::fabs(a[i] - b[i]) / (std::fabs(b[i]) + eps));
    return err;
}

} // namespace bitdec::attn
