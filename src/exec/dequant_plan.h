/**
 * @file
 * Precomputed dequantization routing for packed KV blocks.
 *
 * The fused CPU hot path dequantizes one packed block at a time into a
 * reusable scratch tile. The induced layout scatters a block's codes across
 * 32-bit units by (k-tile, n-group, lane, register-pair); recomputing that
 * mapping per element per step is what made the functional kernels crawl.
 * Every block of a cache shares one layout, so the mapping is computed once
 * per cache and reused for every block on every decode step:
 *
 *  - a DequantPlan stores, for each unit slot and logical code index, the
 *    scratch destination offset and the quantization-parameter group the
 *    code belongs to (CodeRoute);
 *  - each PackedBlock carries a per-group value table with all 2^bits
 *    dequantized values of every group, built once at pack time with the
 *    exact magic-FMA arithmetic (quant::dequantMagicValue) the lop3 fast
 *    path produces — so the fused path is bit-identical to the reference
 *    dequantization while reducing the per-element work to one shift/mask
 *    and one indexed load.
 */
#ifndef BITDEC_EXEC_DEQUANT_PLAN_H
#define BITDEC_EXEC_DEQUANT_PLAN_H

#include <cstdint>
#include <functional>
#include <vector>

#include "common/half.h"
#include "layout/induced_layout.h"

namespace bitdec::exec {

/** Routing of one packed code: scratch slot and parameter-group index. */
struct CodeRoute
{
    std::uint32_t dest;  //!< offset into the dequantized scratch tile
    std::uint32_t param; //!< flat quant-parameter group index
};

/**
 * Unit-slot-ordered routing table for one induced layout: entry
 * [slot * codesPerUnit + i] routes logical code i of unit @p slot.
 *
 * @param lay      the block's induced layout
 * @param dest_of  (row, col) -> scratch offset (caller fixes orientation)
 * @param param_of (row, col) -> flat parameter-group index
 */
std::vector<CodeRoute> buildDequantRoutes(
    const layout::InducedLayout& lay,
    const std::function<std::uint32_t(int, int)>& dest_of,
    const std::function<std::uint32_t(int, int)>& param_of);

/**
 * Dequantizes one packed block into @p out using a routing table and the
 * block's per-group value table (see kv::PackedBlock::dequant_lut). The
 * code extraction mirrors the lop3 pair walk: pair j of a word yields
 * logical codes 2j (low 16-bit lane) and 2j+1 (high lane).
 *
 * @param units  the block's packed words, in unit-slot order
 * @param routes table from buildDequantRoutes for the same layout
 * @param lut    per-group dequantized values (Half-stored, lossless),
 *               [group * 2^bits + code]
 * @param bits   code width (2 or 4)
 * @param out    scratch tile; written at routes[].dest
 */
void dequantBlock(const std::vector<std::uint32_t>& units,
                  const std::vector<CodeRoute>& routes,
                  const std::vector<Half>& lut, int bits, float* out);

} // namespace bitdec::exec

#endif // BITDEC_EXEC_DEQUANT_PLAN_H
