/**
 * @file
 * Small work-stealing thread pool for the CPU execution backend.
 *
 * The pool parallelizes the functional hot paths — (sequence, head) fan-out
 * in batched decode and the serving engine, KV-chunk fan-out inside the
 * fused attention kernels — while keeping results bitwise independent of
 * the thread count: tasks write to disjoint, index-addressed slots and the
 * caller performs every reduction sequentially in index order.
 *
 * Each worker owns a deque; submissions are distributed round-robin, a
 * worker pops from the front of its own deque and steals from the back of
 * a sibling's when it runs dry. The thread calling parallelFor() joins the
 * workers for the duration of the call, so a pool of size 1 executes
 * entirely inline on the caller.
 *
 * The global pool's size comes from the BITDEC_THREADS environment
 * variable, falling back to std::thread::hardware_concurrency().
 */
#ifndef BITDEC_EXEC_THREAD_POOL_H
#define BITDEC_EXEC_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bitdec::exec {

/** Work-stealing pool; see file comment for the determinism contract. */
class ThreadPool
{
  public:
    /**
     * @param threads worker count including the calling thread during
     *                parallelFor; 0 resolves BITDEC_THREADS / hardware
     *                concurrency. A pool of 1 spawns no threads.
     */
    explicit ThreadPool(int threads = 0);

    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Worker count (including the caller during parallelFor). */
    int numThreads() const { return num_threads_; }

    /**
     * Runs fn(i) for every i in [0, n), distributed over the pool; returns
     * once all calls completed. fn must write only to slots owned by its
     * index — the caller merges afterwards, in index order, so output is
     * identical for any pool size.
     */
    void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

    /**
     * Process-wide pool, sized once from BITDEC_THREADS (or the hardware).
     */
    static ThreadPool& global();

    /** Thread count the global pool resolves to (for reporting). */
    static int globalThreadCount();

  private:
    struct Queue
    {
        std::deque<std::function<void()>> tasks;
        std::mutex mutex;
    };

    void workerLoop(std::size_t self);
    bool runOneTask(std::size_t self);

    int num_threads_;
    std::vector<std::unique_ptr<Queue>> queues_;
    std::vector<std::thread> workers_;
    std::atomic<std::size_t> next_queue_{0};
    std::atomic<long> queued_{0};  //!< tasks sitting in queues (wake signal)
    std::atomic<long> pending_{0}; //!< tasks queued or executing (completion)
    std::mutex wake_mutex_;
    std::condition_variable wake_cv_;
    std::mutex done_mutex_;
    std::condition_variable done_cv_;
    std::atomic<bool> stop_{false};
};

/**
 * Convenience: parallelFor on @p pool when given, inline on the calling
 * thread when @p pool is null. Kernels take an optional pool so callers
 * that already fan out at a coarser level (per sequence, per head) run
 * each kernel serially and nested parallelism never arises.
 */
void parallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

} // namespace bitdec::exec

#endif // BITDEC_EXEC_THREAD_POOL_H
