#include "exec/fused_attention.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/logging.h"

namespace bitdec::exec {

namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

} // namespace

void
foldTile(const float* qf, int gq, int d, const float* kf, const float* vf,
         int tokens, float scale, SoftmaxPartial& st, bool round_p)
{
    thread_local std::vector<float> s;
    if (s.size() < static_cast<std::size_t>(tokens))
        s.resize(static_cast<std::size_t>(tokens));
    const std::size_t dd = static_cast<std::size_t>(d);
    for (int r = 0; r < gq; r++) {
        const std::size_t rr = static_cast<std::size_t>(r);
        const float* qrow = qf + rr * dd;
        float bm = st.m[rr];
        for (int t = 0; t < tokens; t++) {
            const float* krow = kf + static_cast<std::size_t>(t) * dd;
            float dot = 0.f;
            for (int c = 0; c < d; c++)
                dot += qrow[c] * krow[c];
            const float logit = dot * scale;
            s[static_cast<std::size_t>(t)] = logit;
            bm = std::max(bm, logit);
        }
        const float rescale = st.m[rr] == kNegInf ? 0.f
                                                  : std::exp(st.m[rr] - bm);
        float* acc = st.acc.data() + rr * dd;
        st.l[rr] *= rescale;
        for (int c = 0; c < d; c++)
            acc[c] *= rescale;
        for (int t = 0; t < tokens; t++) {
            const float pexp = std::exp(s[static_cast<std::size_t>(t)] - bm);
            const float p = round_p ? roundToHalf(pexp) : pexp;
            st.l[rr] += p;
            const float* vrow = vf + static_cast<std::size_t>(t) * dd;
            for (int c = 0; c < d; c++)
                acc[c] += p * vrow[c];
        }
        st.m[rr] = bm;
    }
}

void
SoftmaxPartial::init(int gq, int d)
{
    m.assign(static_cast<std::size_t>(gq), kNegInf);
    l.assign(static_cast<std::size_t>(gq), 0.f);
    acc.assign(static_cast<std::size_t>(gq) * static_cast<std::size_t>(d),
               0.f);
}

SoftmaxPartial
mergePartials(const std::vector<SoftmaxPartial>& parts, int gq, int d)
{
    const std::size_t dd = static_cast<std::size_t>(d);
    SoftmaxPartial run;
    run.init(gq, d);
    for (const SoftmaxPartial& st : parts) {
        for (int r = 0; r < gq; r++) {
            const std::size_t rr = static_cast<std::size_t>(r);
            const float nm = std::max(run.m[rr], st.m[rr]);
            if (nm == kNegInf)
                continue;
            const float ra =
                run.m[rr] == kNegInf ? 0.f : std::exp(run.m[rr] - nm);
            const float rb =
                st.m[rr] == kNegInf ? 0.f : std::exp(st.m[rr] - nm);
            run.l[rr] = run.l[rr] * ra + st.l[rr] * rb;
            float* o = run.acc.data() + rr * dd;
            const float* a = st.acc.data() + rr * dd;
            for (int c = 0; c < d; c++)
                o[c] = o[c] * ra + a[c] * rb;
            run.m[rr] = nm;
        }
    }
    return run;
}

Tensor<float>
finalizePartial(const SoftmaxPartial& st, int gq, int d)
{
    const std::size_t dd = static_cast<std::size_t>(d);
    Tensor<float> out({static_cast<std::size_t>(gq), dd});
    for (int r = 0; r < gq; r++) {
        const std::size_t rr = static_cast<std::size_t>(r);
        const float inv = st.l[rr] > 0.f ? 1.0f / st.l[rr] : 0.f;
        for (int c = 0; c < d; c++)
            out.at(rr, static_cast<std::size_t>(c)) =
                st.acc[rr * dd + static_cast<std::size_t>(c)] * inv;
    }
    return out;
}

Tensor<float>
fusedPagedAttention(const Tensor<Half>& q, const kv::PagedHeadCache& cache,
                    int seq, float scale, ThreadPool* pool)
{
    const int d = cache.headDim();
    const int gq = static_cast<int>(q.dim(0));
    BITDEC_ASSERT(static_cast<int>(q.dim(1)) == d, "query width mismatch");
    const int len = cache.length(seq);
    const int ps = cache.pageSize();
    const std::vector<int>& pages = cache.pageTable(seq);
    const int n_chunks = cache.pagesFor(len); // one chunk per page
    const std::size_t dd = static_cast<std::size_t>(d);

    std::vector<float> qf(static_cast<std::size_t>(gq) * dd);
    toFloat(q.data(), qf.data(), qf.size());

    std::vector<SoftmaxPartial> parts(static_cast<std::size_t>(n_chunks));
    parallelFor(pool, static_cast<std::size_t>(n_chunks), [&](std::size_t ci) {
        SoftmaxPartial& st = parts[ci];
        st.init(gq, d);

        const int page = pages[ci];
        const int tokens =
            std::min(ps, len - static_cast<int>(ci) * ps); // last page partial
        thread_local std::vector<float> kf, vf;
        const std::size_t need = static_cast<std::size_t>(ps) * dd;
        if (kf.size() < need) {
            kf.resize(need);
            vf.resize(need);
        }
        // Bulk-convert the live rows of the page, in place in the pool.
        toFloat(cache.pageKeyData(page), kf.data(),
                static_cast<std::size_t>(tokens) * dd);
        toFloat(cache.pageValueData(page), vf.data(),
                static_cast<std::size_t>(tokens) * dd);
        foldTile(qf.data(), gq, d, kf.data(), vf.data(), tokens, scale, st);
    });

    return finalizePartial(mergePartials(parts, gq, d), gq, d);
}

Tensor<float>
fusedFp16Attention(const Tensor<Half>& q, const kv::Fp16HeadCache& cache,
                   float scale, ThreadPool* pool)
{
    const int d = cache.headDim();
    const int gq = static_cast<int>(q.dim(0));
    BITDEC_ASSERT(static_cast<int>(q.dim(1)) == d, "query width mismatch");
    const int len = cache.length();
    const int n_chunks = (len + kChunkTokens - 1) / kChunkTokens;
    const std::size_t dd = static_cast<std::size_t>(d);

    std::vector<float> qf(static_cast<std::size_t>(gq) * dd);
    toFloat(q.data(), qf.data(), qf.size());

    std::vector<SoftmaxPartial> parts(static_cast<std::size_t>(n_chunks));
    parallelFor(pool, static_cast<std::size_t>(n_chunks), [&](std::size_t ci) {
        SoftmaxPartial& st = parts[ci];
        st.init(gq, d);

        const int t0 = static_cast<int>(ci) * kChunkTokens;
        const int tokens = std::min(kChunkTokens, len - t0);
        thread_local std::vector<float> kf, vf;
        const std::size_t need =
            static_cast<std::size_t>(kChunkTokens) * dd;
        if (kf.size() < need) {
            kf.resize(need);
            vf.resize(need);
        }
        toFloat(cache.keys().data() + static_cast<std::size_t>(t0) * dd,
                kf.data(), static_cast<std::size_t>(tokens) * dd);
        toFloat(cache.values().data() + static_cast<std::size_t>(t0) * dd,
                vf.data(), static_cast<std::size_t>(tokens) * dd);
        foldTile(qf.data(), gq, d, kf.data(), vf.data(), tokens, scale, st);
    });

    return finalizePartial(mergePartials(parts, gq, d), gq, d);
}

} // namespace bitdec::exec
