/**
 * @file
 * Per-ISA kernel tables of the SIMD hot path.
 *
 * Each ISA translation unit (kernels_avx2.cc, kernels_avx512.cc) is
 * compiled with its own -m flags and exports one KernelTable of plain
 * function pointers; dispatch.cc maps a runtime-detected Level to a
 * table. The table is deliberately POD-only — raw pointers and sizes, no
 * std containers — so the ISA TUs never instantiate common template code
 * that the linker could fold across differently-flagged TUs (the classic
 * way an AVX-512-encoded std::vector helper ends up running on an AVX2
 * machine).
 *
 * Determinism contract (what makes a SIMD backend digest-identical to
 * its scalar twin): every kernel replicates the scalar arithmetic order
 * per output element. QK vectorizes across tokens (one lane per token,
 * channels accumulated sequentially, separate mul+add — never FMA; the
 * TUs also compile with -ffp-contract=off), PV vectorizes across
 * channels (tokens accumulated sequentially per channel), max/exp/
 * half-rounding stay scalar per token, and dequant/conversion are
 * integer-exact table lookups. See docs/BACKENDS.md.
 */
#ifndef BITDEC_EXEC_SIMD_KERNEL_TABLE_H
#define BITDEC_EXEC_SIMD_KERNEL_TABLE_H

#include <cstddef>
#include <cstdint>

#include "common/half.h"

namespace bitdec::exec::simd {

/** The three hot loops + the Half->float conversions they feed on. */
struct KernelTable
{
    /** Bulk Half->float, bit-identical to toFloat()'s LUT widening. */
    void (*convert_rows)(const Half* src, std::size_t n, float* dst);

    /**
     * Half->float conversion of a token-major [tokens x d] tile into a
     * channel-major float scratch: kT[c * t_stride + t]. Feeds the
     * vectorized QK loop with contiguous per-channel token runs.
     */
    void (*convert_transpose)(const Half* src, int tokens, int d, float* kT,
                              int t_stride);

    /**
     * One K/V tile folded into a split-softmax partial state — the SIMD
     * twin of exec::foldTile, bit-identical to it by construction.
     *
     * @param kT  channel-major float keys, [d x t_stride]
     * @param vf  token-major float values, [tokens x d]
     * @param m,l,acc  the partial state's arrays (SoftmaxPartial fields)
     * @param s   caller scratch, >= tokens floats
     */
    void (*fold_tile)(const float* qf, int gq, int d, const float* kT,
                      int t_stride, const float* vf, int tokens, float scale,
                      float* m, float* l, float* acc, float* s, bool round_p);

    /**
     * Dequantizes one packed block through a LinearDequantPlan's SoA
     * arrays (unit/shift/param, n elements) and a float value LUT.
     * Bit-identical to exec::dequantBlock over the same routing.
     */
    void (*dequant_linear)(const std::uint32_t* units,
                           const std::uint32_t* unit_of,
                           const std::uint32_t* shift_of,
                           const std::uint32_t* param_of, std::size_t n,
                           int bits, const float* flut, float* out);
};

/** The AVX2 (+F16C) table; null when not compiled for this target. */
const KernelTable* avx2Kernels();

/** The AVX-512 (F/BW/DQ/VL) table; null when not compiled in. */
const KernelTable* avx512Kernels();

} // namespace bitdec::exec::simd

#endif // BITDEC_EXEC_SIMD_KERNEL_TABLE_H
