#include "exec/simd/dequant_linear.h"

#include <limits>

#include "common/logging.h"

namespace bitdec::exec::simd {

LinearDequantPlan
buildLinearDequantPlan(
    const std::vector<CodeRoute>& routes, int bits, std::size_t n_elems,
    const std::function<std::uint32_t(std::uint32_t)>& remap_dest)
{
    BITDEC_ASSERT(bits == 2 || bits == 4, "unsupported code width");
    const int cpu = 32 / bits;
    BITDEC_ASSERT(routes.size() == n_elems,
                  "route table does not cover the scratch tile");

    constexpr std::uint32_t kUnrouted =
        std::numeric_limits<std::uint32_t>::max();
    LinearDequantPlan plan;
    plan.bits = bits;
    plan.unit.assign(n_elems, kUnrouted);
    plan.shift.resize(n_elems);
    plan.param.resize(n_elems);

    for (std::size_t idx = 0; idx < routes.size(); idx++) {
        const std::uint32_t slot = static_cast<std::uint32_t>(idx) /
                                   static_cast<std::uint32_t>(cpu);
        const int i = static_cast<int>(idx % static_cast<std::size_t>(cpu));
        std::uint32_t dest = routes[idx].dest;
        if (remap_dest)
            dest = remap_dest(dest);
        BITDEC_ASSERT(dest < n_elems, "route destination out of range");
        BITDEC_ASSERT(plan.unit[dest] == kUnrouted,
                      "two codes route to one scratch destination");
        plan.unit[dest] = slot;
        // Pair j of a packed word holds logical codes 2j (low 16-bit
        // lane) and 2j+1 (high lane) — the lop3 pair walk of
        // dequantBlock.
        plan.shift[dest] = static_cast<std::uint32_t>(bits * (i / 2) +
                                                      (i % 2) * 16);
        plan.param[dest] = routes[idx].param
                           << static_cast<std::uint32_t>(bits);
    }
    for (std::size_t i = 0; i < n_elems; i++)
        BITDEC_ASSERT(plan.unit[i] != kUnrouted,
                      "scratch destination never routed");
    return plan;
}

} // namespace bitdec::exec::simd
