/**
 * @file
 * SIMD twins of the fused FP16/paged attention paths: identical chunking
 * (one page per partial / kChunkTokens chunks), identical sequential
 * merges, kernels from the requested Level's table. Bitwise identical to
 * their scalar twins for any thread count — the only difference is that
 * K tiles convert into a channel-major float scratch (feeding the
 * lane-per-token QK loop) instead of a token-major one.
 */
#ifndef BITDEC_EXEC_SIMD_SIMD_ATTENTION_H
#define BITDEC_EXEC_SIMD_SIMD_ATTENTION_H

#include "exec/fused_attention.h"
#include "exec/simd/dispatch.h"

namespace bitdec::exec::simd {

/** SIMD twin of exec::fusedPagedAttention; digest-identical to it. */
Tensor<float> fusedPagedAttentionSimd(const Tensor<Half>& q,
                                      const kv::PagedHeadCache& cache,
                                      int seq, float scale, Level level,
                                      ThreadPool* pool = nullptr);

/** SIMD twin of exec::fusedFp16Attention; digest-identical to it. */
Tensor<float> fusedFp16AttentionSimd(const Tensor<Half>& q,
                                     const kv::Fp16HeadCache& cache,
                                     float scale, Level level,
                                     ThreadPool* pool = nullptr);

} // namespace bitdec::exec::simd

#endif // BITDEC_EXEC_SIMD_SIMD_ATTENTION_H
