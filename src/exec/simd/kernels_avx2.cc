/**
 * @file
 * AVX2 (+F16C) kernel table. Compiled with -mavx2 -mf16c
 * -ffp-contract=off (CMake per-source flags); on targets or compilers
 * without those flags the TU degrades to a null table and runtime
 * dispatch reports the level unsupported.
 */
#include "exec/simd/kernel_table.h"

#if defined(__AVX2__) && defined(__F16C__)

#include "exec/simd/kernels_impl.h"

namespace bitdec::exec::simd {

namespace {

struct VecAvx2
{
    static constexpr int W = 8;
    using F = __m256;
    using I = __m256i;

    static F zero() { return _mm256_setzero_ps(); }
    static F broadcast(float x) { return _mm256_set1_ps(x); }
    static F load(const float* p) { return _mm256_loadu_ps(p); }
    static void store(float* p, F v) { _mm256_storeu_ps(p, v); }
    static F mul(F a, F b) { return _mm256_mul_ps(a, b); }
    static F add(F a, F b) { return _mm256_add_ps(a, b); }

    static I loadI(const std::uint32_t* p)
    {
        return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    }
    static I broadcastI(std::uint32_t x)
    {
        return _mm256_set1_epi32(static_cast<int>(x));
    }
    static I andI(I a, I b) { return _mm256_and_si256(a, b); }
    static I orI(I a, I b) { return _mm256_or_si256(a, b); }
    static I srlv(I a, I count) { return _mm256_srlv_epi32(a, count); }
    static I gatherI(const std::uint32_t* base, I idx)
    {
        return _mm256_i32gather_epi32(reinterpret_cast<const int*>(base),
                                      idx, 4);
    }
    static F gatherF(const float* base, I idx)
    {
        return _mm256_i32gather_ps(base, idx, 4);
    }
};

const KernelTable kTable = {
    impl::convertRowsF16c,
    impl::convertTransposeF16c,
    impl::foldTileImpl<VecAvx2>,
    impl::dequantLinearImpl<VecAvx2>,
};

} // namespace

const KernelTable*
avx2Kernels()
{
    return &kTable;
}

} // namespace bitdec::exec::simd

#else // !(__AVX2__ && __F16C__)

namespace bitdec::exec::simd {

const KernelTable*
avx2Kernels()
{
    return nullptr;
}

} // namespace bitdec::exec::simd

#endif
