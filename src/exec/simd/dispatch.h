/**
 * @file
 * Runtime SIMD dispatch: cpuid/xgetbv feature detection, the
 * `BITDEC_SIMD=scalar|avx2|avx512` override, and Level -> KernelTable
 * resolution.
 *
 * A Level is usable only when the CPU reports the ISA, the OS saves the
 * register state (XCR0), and the matching kernel TU was compiled in.
 * `BITDEC_SIMD` caps the level (scalar < avx2 < avx512); naming a level
 * this host cannot run is a fatal error that lists the detected CPU
 * features — never a silent fallback. The SIMD sibling backends
 * (fused-*-avx2 / -avx512) gate their availability on levelEnabled(), so
 * listings hide and resolution rejects what the host cannot execute.
 */
#ifndef BITDEC_EXEC_SIMD_DISPATCH_H
#define BITDEC_EXEC_SIMD_DISPATCH_H

#include <string>

#include "exec/simd/kernel_table.h"

namespace bitdec::exec::simd {

/** SIMD levels, ordered: a level implies every lower one. */
enum class Level
{
    Scalar = 0,
    Avx2 = 1,   //!< AVX2 + F16C, 8 float lanes
    Avx512 = 2, //!< AVX-512 F/BW/DQ/VL + F16C, 16 float lanes
};

/** "scalar" / "avx2" / "avx512" — the BITDEC_SIMD vocabulary. */
const char* toString(Level l);

/** What cpuid/xgetbv report on this host. */
struct CpuFeatures
{
    bool avx = false;
    bool avx2 = false;
    bool fma = false;
    bool f16c = false;
    bool avx512f = false;
    bool avx512bw = false;
    bool avx512dq = false;
    bool avx512vl = false;
    bool os_ymm = false; //!< OS saves ymm state (XCR0 bits 1-2)
    bool os_zmm = false; //!< OS saves zmm/opmask state (XCR0 bits 5-7)
};

/** Detected once per process, then cached. */
const CpuFeatures& cpuFeatures();

/** Space-separated detected-feature list for messages and bench JSON,
 *  e.g. "avx avx2 fma f16c avx512f ..."; "none" when nothing relevant. */
std::string describeCpuFeatures();

/** Highest level this host can run (CPU + OS + compiled-in kernels). */
Level maxSupportedLevel();

/** True when CPU, OS and build support @p l (ignores BITDEC_SIMD). */
bool levelSupported(Level l);

/**
 * The level cap after applying BITDEC_SIMD: maxSupportedLevel() when the
 * variable is unset/empty; otherwise the named level. Fatal when the
 * value is not a level name, or names a level this host cannot run (the
 * error lists the detected CPU features).
 */
Level enabledLevelCap();

/** levelSupported(l) && l <= enabledLevelCap() — what backend
 *  availability gates on. */
bool levelEnabled(Level l);

/**
 * Pure core of enabledLevelCap(), exposed so tests can probe the
 * fail-fast paths with fake hosts: resolves @p value (the BITDEC_SIMD
 * string, may be null) against a host whose max level is
 * @p max_supported and whose detected features read @p features.
 */
Level resolveSimdOverride(const char* value, Level max_supported,
                          const std::string& features);

/** Why levelEnabled(l) is false; empty when it is true. */
std::string unavailableReason(Level l);

/** The kernel table of @p l; null for Scalar or a level not compiled
 *  in. Callers on the hot path resolve once per decode, not per tile. */
const KernelTable* kernels(Level l);

} // namespace bitdec::exec::simd

#endif // BITDEC_EXEC_SIMD_DISPATCH_H
