#include "exec/simd/dispatch.h"

#include <cstdlib>
#include <cstring>

#include "common/logging.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace bitdec::exec::simd {

namespace {

#if defined(__x86_64__) || defined(__i386__)

/** XCR0 via xgetbv (inline asm: the intrinsic needs -mxsave). */
std::uint64_t
readXcr0()
{
    std::uint32_t lo = 0, hi = 0;
    __asm__ __volatile__("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
    return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

CpuFeatures
detect()
{
    CpuFeatures f;
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx))
        return f;
    const bool osxsave = (ecx & (1u << 27)) != 0;
    f.avx = (ecx & (1u << 28)) != 0;
    f.fma = (ecx & (1u << 12)) != 0;
    f.f16c = (ecx & (1u << 29)) != 0;
    std::uint64_t xcr0 = 0;
    if (osxsave)
        xcr0 = readXcr0();
    f.os_ymm = f.avx && (xcr0 & 0x6u) == 0x6u;           // xmm + ymm
    f.os_zmm = f.os_ymm && (xcr0 & 0xE0u) == 0xE0u;      // opmask + zmm
    if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
        f.avx2 = (ebx & (1u << 5)) != 0;
        f.avx512f = (ebx & (1u << 16)) != 0;
        f.avx512dq = (ebx & (1u << 17)) != 0;
        f.avx512bw = (ebx & (1u << 30)) != 0;
        f.avx512vl = (ebx & (1u << 31)) != 0;
    }
    return f;
}

#else // non-x86: no SIMD levels, scalar only

CpuFeatures
detect()
{
    return {};
}

#endif

} // namespace

const char*
toString(Level l)
{
    switch (l) {
    case Level::Scalar: return "scalar";
    case Level::Avx2: return "avx2";
    case Level::Avx512: return "avx512";
    }
    return "?";
}

const CpuFeatures&
cpuFeatures()
{
    static const CpuFeatures f = detect();
    return f;
}

std::string
describeCpuFeatures()
{
    const CpuFeatures& f = cpuFeatures();
    std::string s;
    const auto append = [&s](bool have, const char* name) {
        if (!have)
            return;
        if (!s.empty())
            s += " ";
        s += name;
    };
    append(f.avx, "avx");
    append(f.avx2, "avx2");
    append(f.fma, "fma");
    append(f.f16c, "f16c");
    append(f.avx512f, "avx512f");
    append(f.avx512bw, "avx512bw");
    append(f.avx512dq, "avx512dq");
    append(f.avx512vl, "avx512vl");
    append(f.os_ymm, "os-ymm");
    append(f.os_zmm, "os-zmm");
    return s.empty() ? "none" : s;
}

bool
levelSupported(Level l)
{
    const CpuFeatures& f = cpuFeatures();
    switch (l) {
    case Level::Scalar:
        return true;
    case Level::Avx2:
        return f.avx2 && f.f16c && f.os_ymm && avx2Kernels() != nullptr;
    case Level::Avx512:
        return f.avx512f && f.avx512bw && f.avx512dq && f.avx512vl &&
               f.f16c && f.os_zmm && avx512Kernels() != nullptr;
    }
    return false;
}

Level
maxSupportedLevel()
{
    if (levelSupported(Level::Avx512))
        return Level::Avx512;
    if (levelSupported(Level::Avx2))
        return Level::Avx2;
    return Level::Scalar;
}

Level
resolveSimdOverride(const char* value, Level max_supported,
                    const std::string& features)
{
    if (value == nullptr || *value == '\0')
        return max_supported;
    Level want;
    if (std::strcmp(value, "scalar") == 0)
        want = Level::Scalar;
    else if (std::strcmp(value, "avx2") == 0)
        want = Level::Avx2;
    else if (std::strcmp(value, "avx512") == 0)
        want = Level::Avx512;
    else
        BITDEC_FATAL("BITDEC_SIMD='", value,
                     "' is not a SIMD level (use scalar, avx2 or avx512)");
    if (want > max_supported)
        BITDEC_FATAL("BITDEC_SIMD=", value,
                     " requests an unsupported ISA on this host (max usable "
                     "level: ", toString(max_supported),
                     "; detected CPU features: ", features, ")");
    return want;
}

Level
enabledLevelCap()
{
    return resolveSimdOverride(std::getenv("BITDEC_SIMD"),
                               maxSupportedLevel(), describeCpuFeatures());
}

bool
levelEnabled(Level l)
{
    return levelSupported(l) && l <= enabledLevelCap();
}

std::string
unavailableReason(Level l)
{
    if (!levelSupported(l))
        return std::string("requires ") + toString(l) +
               " (detected CPU features: " + describeCpuFeatures() + ")";
    if (l > enabledLevelCap()) {
        const char* env = std::getenv("BITDEC_SIMD");
        return std::string("disabled by BITDEC_SIMD=") +
               (env != nullptr ? env : "");
    }
    return {};
}

const KernelTable*
kernels(Level l)
{
    switch (l) {
    case Level::Scalar: return nullptr;
    case Level::Avx2: return avx2Kernels();
    case Level::Avx512: return avx512Kernels();
    }
    return nullptr;
}

} // namespace bitdec::exec::simd
