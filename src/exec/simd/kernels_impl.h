/**
 * @file
 * Shared implementation of the SIMD hot-path kernels, parameterized on a
 * vector-traits struct (8-lane AVX2, 16-lane AVX-512). Included ONLY by
 * the per-ISA translation units — everything here is internal-linkage
 * (static / per-TU template instantiations over TU-local traits) so no
 * symbol compiled under one ISA's flags can be linker-folded into
 * another TU.
 *
 * Bit-exactness rules (the whole point of this file):
 *  - QK: one lane per token; channels accumulate sequentially c = 0..d-1
 *    with separate mul and add per step, replicating the scalar
 *    `dot += q[c] * k[c]` rounding sequence exactly. The tail tokens run
 *    the scalar loop verbatim.
 *  - row max, exp and the packed path's half-rounding of P stay scalar
 *    per token, in scalar token order.
 *  - PV: one lane per channel; tokens accumulate sequentially, so each
 *    acc[c] sees the identical addition order as the scalar fold.
 *  - conversion and dequant are exact (Half widening is lossless; code
 *    extraction and LUT indexing are integer ops), so any order works.
 */
#ifndef BITDEC_EXEC_SIMD_KERNELS_IMPL_H
#define BITDEC_EXEC_SIMD_KERNELS_IMPL_H

#include <immintrin.h>

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "common/half.h"

namespace bitdec::exec::simd {

namespace impl {

/** Bulk Half->float via F16C; tail through the exact LUT. vcvtph2ps is
 *  exact for every non-NaN pattern and preserves NaN payloads, so the
 *  bytes match toFloat() — test_properties sweeps all 65536 patterns. */
static void
convertRowsF16c(const Half* src, std::size_t n, float* dst)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128i h = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(src + i));
        _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
    }
    const float* lut = halfToFloatLut();
    for (; i < n; i++)
        dst[i] = lut[src[i].bits()];
}

/** In-register 8x8 float transpose: rows r0..r7 become columns 0..7. */
static void
transpose8x8(__m256 r[8], __m256 out[8])
{
    const __m256 t0 = _mm256_unpacklo_ps(r[0], r[1]);
    const __m256 t1 = _mm256_unpackhi_ps(r[0], r[1]);
    const __m256 t2 = _mm256_unpacklo_ps(r[2], r[3]);
    const __m256 t3 = _mm256_unpackhi_ps(r[2], r[3]);
    const __m256 t4 = _mm256_unpacklo_ps(r[4], r[5]);
    const __m256 t5 = _mm256_unpackhi_ps(r[4], r[5]);
    const __m256 t6 = _mm256_unpacklo_ps(r[6], r[7]);
    const __m256 t7 = _mm256_unpackhi_ps(r[6], r[7]);
    const __m256 s0 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 s1 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 s2 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 s3 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 s4 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 s5 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 s6 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 s7 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(3, 2, 3, 2));
    out[0] = _mm256_permute2f128_ps(s0, s4, 0x20);
    out[1] = _mm256_permute2f128_ps(s1, s5, 0x20);
    out[2] = _mm256_permute2f128_ps(s2, s6, 0x20);
    out[3] = _mm256_permute2f128_ps(s3, s7, 0x20);
    out[4] = _mm256_permute2f128_ps(s0, s4, 0x31);
    out[5] = _mm256_permute2f128_ps(s1, s5, 0x31);
    out[6] = _mm256_permute2f128_ps(s2, s6, 0x31);
    out[7] = _mm256_permute2f128_ps(s3, s7, 0x31);
}

/** Converts a token-major [tokens x d] Half tile into a channel-major
 *  float scratch (kT[c * t_stride + t]): 8x8 convert+transpose blocks,
 *  scalar LUT tails. Pure data movement + exact conversion. */
static void
convertTransposeF16c(const Half* src, int tokens, int d, float* kT,
                     int t_stride)
{
    const float* lut = halfToFloatLut();
    const std::size_t dd = static_cast<std::size_t>(d);
    const std::size_t ts = static_cast<std::size_t>(t_stride);
    int t = 0;
    for (; t + 8 <= tokens; t += 8) {
        int c = 0;
        for (; c + 8 <= d; c += 8) {
            __m256 rows[8];
            for (int i = 0; i < 8; i++) {
                const __m128i h = _mm_loadu_si128(
                    reinterpret_cast<const __m128i*>(
                        src + static_cast<std::size_t>(t + i) * dd +
                        static_cast<std::size_t>(c)));
                rows[i] = _mm256_cvtph_ps(h);
            }
            __m256 cols[8];
            transpose8x8(rows, cols);
            for (int j = 0; j < 8; j++)
                _mm256_storeu_ps(kT + static_cast<std::size_t>(c + j) * ts +
                                     static_cast<std::size_t>(t),
                                 cols[j]);
        }
        for (; c < d; c++)
            for (int i = 0; i < 8; i++)
                kT[static_cast<std::size_t>(c) * ts +
                   static_cast<std::size_t>(t + i)] =
                    lut[src[static_cast<std::size_t>(t + i) * dd +
                            static_cast<std::size_t>(c)]
                            .bits()];
    }
    for (; t < tokens; t++)
        for (int c = 0; c < d; c++)
            kT[static_cast<std::size_t>(c) * ts +
               static_cast<std::size_t>(t)] =
                lut[src[static_cast<std::size_t>(t) * dd +
                        static_cast<std::size_t>(c)]
                        .bits()];
}

/**
 * The fold kernel: SIMD twin of exec::foldTile over a channel-major K
 * scratch. V is the traits struct of the ISA TU instantiating this.
 */
template <class V>
static void
foldTileImpl(const float* qf, int gq, int d, const float* kT, int t_stride,
             const float* vf, int tokens, float scale, float* m, float* l,
             float* acc_all, float* s, bool round_p)
{
    const float neg_inf = -__builtin_inff();
    const std::size_t dd = static_cast<std::size_t>(d);
    const std::size_t ts = static_cast<std::size_t>(t_stride);
    for (int r = 0; r < gq; r++) {
        const std::size_t rr = static_cast<std::size_t>(r);
        const float* qrow = qf + rr * dd;
        // QK: lane-per-token; channels accumulate in scalar order with
        // separate mul+add, so each lane rounds exactly like the scalar
        // dot loop.
        int t = 0;
        const auto vscale = V::broadcast(scale);
        // 4 token-vectors per pass: four independent add chains hide the
        // add latency, one q broadcast feeds all four. Each lane still
        // accumulates c = 0..d-1 sequentially, so rounding is unchanged.
        for (; t + 4 * V::W <= tokens; t += 4 * V::W) {
            auto d0 = V::zero(), d1 = V::zero(), d2 = V::zero(),
                 d3 = V::zero();
            for (int c = 0; c < d; c++) {
                const float* krow =
                    kT + static_cast<std::size_t>(c) * ts +
                    static_cast<std::size_t>(t);
                const auto q = V::broadcast(qrow[c]);
                d0 = V::add(d0, V::mul(q, V::load(krow)));
                d1 = V::add(d1, V::mul(q, V::load(krow + V::W)));
                d2 = V::add(d2, V::mul(q, V::load(krow + 2 * V::W)));
                d3 = V::add(d3, V::mul(q, V::load(krow + 3 * V::W)));
            }
            V::store(s + t, V::mul(d0, vscale));
            V::store(s + t + V::W, V::mul(d1, vscale));
            V::store(s + t + 2 * V::W, V::mul(d2, vscale));
            V::store(s + t + 3 * V::W, V::mul(d3, vscale));
        }
        for (; t + V::W <= tokens; t += V::W) {
            auto dot = V::zero();
            for (int c = 0; c < d; c++)
                dot = V::add(dot,
                             V::mul(V::broadcast(qrow[c]),
                                    V::load(kT + static_cast<std::size_t>(c) *
                                                     ts +
                                            static_cast<std::size_t>(t))));
            V::store(s + t, V::mul(dot, vscale));
        }
        for (; t < tokens; t++) {
            float dot = 0.f;
            for (int c = 0; c < d; c++)
                dot += qrow[c] * kT[static_cast<std::size_t>(c) * ts +
                                    static_cast<std::size_t>(t)];
            s[t] = dot * scale;
        }
        // Row max scalar, in scalar token order (same semantics as the
        // scalar fold's interleaved std::max chain).
        float bm = m[rr];
        for (int i = 0; i < tokens; i++)
            bm = bm < s[i] ? s[i] : bm;
        const float rescale = m[rr] == neg_inf ? 0.f : std::exp(m[rr] - bm);
        float* acc = acc_all + rr * dd;
        l[rr] *= rescale;
        {
            const auto vr = V::broadcast(rescale);
            int c = 0;
            for (; c + V::W <= d; c += V::W)
                V::store(acc + c, V::mul(V::load(acc + c), vr));
            for (; c < d; c++)
                acc[c] *= rescale;
        }
        // PV: exp/rounding scalar per token; lane-per-channel
        // accumulation in token order — each acc[c] sees the scalar
        // addition sequence.
        for (int tt = 0; tt < tokens; tt++) {
            const float pexp = std::exp(s[tt] - bm);
            const float p = round_p ? roundToHalf(pexp) : pexp;
            l[rr] += p;
            const float* vrow = vf + static_cast<std::size_t>(tt) * dd;
            const auto vp = V::broadcast(p);
            int c = 0;
            for (; c + V::W <= d; c += V::W)
                V::store(acc + c,
                         V::add(V::load(acc + c), V::mul(vp, V::load(vrow +
                                                                     c))));
            for (; c < d; c++)
                acc[c] += p * vrow[c];
        }
        m[rr] = bm;
    }
}

/** Destination-ordered block dequant: gather words, variable-shift/mask
 *  the codes, gather values from the float LUT, contiguous store. */
template <class V>
static void
dequantLinearImpl(const std::uint32_t* units, const std::uint32_t* unit_of,
                  const std::uint32_t* shift_of, const std::uint32_t* param_of,
                  std::size_t n, int bits, const float* flut, float* out)
{
    const std::uint32_t maskv = (1u << bits) - 1u;
    const auto vmask = V::broadcastI(maskv);
    std::size_t i = 0;
    for (; i + V::W <= n; i += V::W) {
        const auto words = V::gatherI(units, V::loadI(unit_of + i));
        const auto codes =
            V::andI(V::srlv(words, V::loadI(shift_of + i)), vmask);
        const auto li = V::orI(V::loadI(param_of + i), codes);
        V::store(out + i, V::gatherF(flut, li));
    }
    for (; i < n; i++)
        out[i] = flut[param_of[i] |
                      ((units[unit_of[i]] >> shift_of[i]) & maskv)];
}

} // namespace impl

} // namespace bitdec::exec::simd

#endif // BITDEC_EXEC_SIMD_KERNELS_IMPL_H
