/**
 * @file
 * AVX-512 (F/BW/DQ/VL) kernel table: the 16-lane instantiation of the
 * shared kernel templates. Compiled with -mavx512f -mavx512bw -mavx512dq
 * -mavx512vl -mf16c -ffp-contract=off; degrades to a null table when the
 * compiler lacks the flags. The conversion kernels stay 8-wide (they are
 * load/store bound and VL makes the ymm forms available here); the
 * compute kernels run 16 lanes.
 */
#include "exec/simd/kernel_table.h"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512DQ__) && \
    defined(__AVX512VL__) && defined(__F16C__)

#include "exec/simd/kernels_impl.h"

namespace bitdec::exec::simd {

namespace {

struct VecAvx512
{
    static constexpr int W = 16;
    using F = __m512;
    using I = __m512i;

    static F zero() { return _mm512_setzero_ps(); }
    static F broadcast(float x) { return _mm512_set1_ps(x); }
    static F load(const float* p) { return _mm512_loadu_ps(p); }
    static void store(float* p, F v) { _mm512_storeu_ps(p, v); }
    static F mul(F a, F b) { return _mm512_mul_ps(a, b); }
    static F add(F a, F b) { return _mm512_add_ps(a, b); }

    static I loadI(const std::uint32_t* p) { return _mm512_loadu_si512(p); }
    static I broadcastI(std::uint32_t x)
    {
        return _mm512_set1_epi32(static_cast<int>(x));
    }
    static I andI(I a, I b) { return _mm512_and_si512(a, b); }
    static I orI(I a, I b) { return _mm512_or_si512(a, b); }
    static I srlv(I a, I count) { return _mm512_srlv_epi32(a, count); }
    static I gatherI(const std::uint32_t* base, I idx)
    {
        return _mm512_i32gather_epi32(idx, base, 4);
    }
    static F gatherF(const float* base, I idx)
    {
        return _mm512_i32gather_ps(idx, base, 4);
    }
};

const KernelTable kTable = {
    impl::convertRowsF16c,
    impl::convertTransposeF16c,
    impl::foldTileImpl<VecAvx512>,
    impl::dequantLinearImpl<VecAvx512>,
};

} // namespace

const KernelTable*
avx512Kernels()
{
    return &kTable;
}

} // namespace bitdec::exec::simd

#else // missing AVX-512 F/BW/DQ/VL or F16C

namespace bitdec::exec::simd {

const KernelTable*
avx512Kernels()
{
    return nullptr;
}

} // namespace bitdec::exec::simd

#endif
