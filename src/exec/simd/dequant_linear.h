/**
 * @file
 * Destination-ordered ("linear") dequantization plans for the SIMD hot
 * path.
 *
 * The scalar fused path walks a packed block in unit-slot order and
 * scatters codes to their scratch destinations through a CodeRoute table
 * (exec/dequant_plan.h). That order is scatter-shaped: consecutive codes
 * land at unrelated scratch offsets, which defeats vector stores. A
 * LinearDequantPlan is the same routing inverted: for every scratch
 * destination, in destination order, it records which packed word the
 * code lives in, the in-word bit shift that extracts it, and its
 * (pre-shifted) parameter-group LUT base. The SIMD kernels then walk the
 * scratch contiguously — gather the words, variable-shift/mask the
 * codes, gather the dequantized values from a float LUT, store a full
 * vector — and produce bit-identical bytes to dequantBlock, since code
 * extraction and table lookup are integer-exact under any order.
 *
 * A destination remap hook lets the key plan target a channel-major
 * [d x Nr] scratch (what the vectorized QK loop wants) while reusing the
 * token-major routes the cache already builds; the remap is pure index
 * arithmetic, so K needs no separate route table.
 */
#ifndef BITDEC_EXEC_SIMD_DEQUANT_LINEAR_H
#define BITDEC_EXEC_SIMD_DEQUANT_LINEAR_H

#include <cstdint>
#include <functional>
#include <vector>

#include "exec/dequant_plan.h"

namespace bitdec::exec::simd {

/**
 * SoA routing of one packed block, ordered by scratch destination:
 * element i of the dequantized tile is code
 * `(units[unit[i]] >> shift[i]) & ((1 << bits) - 1)` of its block, and
 * dequantizes to `lut[param[i] | code]` (param is stored pre-shifted by
 * bits). Shared by every block of a cache, like the CodeRoute table it
 * is derived from.
 */
struct LinearDequantPlan
{
    int bits = 0;                      //!< code width (2 or 4)
    std::vector<std::uint32_t> unit;   //!< packed word per destination
    std::vector<std::uint32_t> shift;  //!< in-word code shift
    std::vector<std::uint32_t> param;  //!< param-group LUT base (<< bits)

    std::size_t size() const { return unit.size(); }
};

/**
 * Inverts a unit-slot-ordered CodeRoute table into a destination-ordered
 * plan. Every destination in [0, n_elems) must be routed exactly once
 * (fatal otherwise — a hole would read uninitialized scratch).
 *
 * @param routes     table from buildDequantRoutes (slot-major)
 * @param bits       code width; pair j of a word holds logical codes 2j
 *                   (shift bits*j) and 2j+1 (shift bits*j + 16)
 * @param n_elems    scratch tile element count
 * @param remap_dest optional destination remap (e.g. token-major ->
 *                   channel-major); identity when null
 */
LinearDequantPlan buildLinearDequantPlan(
    const std::vector<CodeRoute>& routes, int bits, std::size_t n_elems,
    const std::function<std::uint32_t(std::uint32_t)>& remap_dest = nullptr);

} // namespace bitdec::exec::simd

#endif // BITDEC_EXEC_SIMD_DEQUANT_LINEAR_H
