#include "exec/simd/simd_attention.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"

namespace bitdec::exec::simd {

namespace {

/** The level's kernel table; fatal (never a silent fallback) when the
 *  host cannot run it — backends gate availability upstream, so hitting
 *  this means a caller bypassed the registry. */
const KernelTable*
requireKernels(Level level)
{
    const KernelTable* kt = kernels(level);
    if (kt == nullptr)
        BITDEC_FATAL("SIMD level '", toString(level),
                     "' has no kernels on this host (detected CPU "
                     "features: ", describeCpuFeatures(), ")");
    return kt;
}

} // namespace

Tensor<float>
fusedPagedAttentionSimd(const Tensor<Half>& q, const kv::PagedHeadCache& cache,
                        int seq, float scale, Level level, ThreadPool* pool)
{
    const KernelTable* kt = requireKernels(level);
    const int d = cache.headDim();
    const int gq = static_cast<int>(q.dim(0));
    BITDEC_ASSERT(static_cast<int>(q.dim(1)) == d, "query width mismatch");
    const int len = cache.length(seq);
    const int ps = cache.pageSize();
    const std::vector<int>& pages = cache.pageTable(seq);
    const int n_chunks = cache.pagesFor(len); // one chunk per page
    const std::size_t dd = static_cast<std::size_t>(d);

    std::vector<float> qf(static_cast<std::size_t>(gq) * dd);
    kt->convert_rows(q.data(), qf.size(), qf.data());

    std::vector<SoftmaxPartial> parts(static_cast<std::size_t>(n_chunks));
    parallelFor(pool, static_cast<std::size_t>(n_chunks), [&](std::size_t ci) {
        SoftmaxPartial& st = parts[ci];
        st.init(gq, d);

        const int page = pages[ci];
        const int tokens =
            std::min(ps, len - static_cast<int>(ci) * ps); // last page partial
        thread_local std::vector<float> kT, vf, s;
        const std::size_t need = static_cast<std::size_t>(ps) * dd;
        if (kT.size() < need) {
            kT.resize(need);
            vf.resize(need);
        }
        if (s.size() < static_cast<std::size_t>(ps))
            s.resize(static_cast<std::size_t>(ps));
        // K converts channel-major (the vector QK layout), V token-major;
        // both conversions are bit-exact Half widenings.
        kt->convert_transpose(cache.pageKeyData(page), tokens, d, kT.data(),
                              tokens);
        kt->convert_rows(cache.pageValueData(page),
                         static_cast<std::size_t>(tokens) * dd, vf.data());
        kt->fold_tile(qf.data(), gq, d, kT.data(), tokens, vf.data(), tokens,
                      scale, st.m.data(), st.l.data(), st.acc.data(),
                      s.data(), /*round_p=*/false);
    });

    return finalizePartial(mergePartials(parts, gq, d), gq, d);
}

Tensor<float>
fusedFp16AttentionSimd(const Tensor<Half>& q, const kv::Fp16HeadCache& cache,
                       float scale, Level level, ThreadPool* pool)
{
    const KernelTable* kt = requireKernels(level);
    const int d = cache.headDim();
    const int gq = static_cast<int>(q.dim(0));
    BITDEC_ASSERT(static_cast<int>(q.dim(1)) == d, "query width mismatch");
    const int len = cache.length();
    const int n_chunks = (len + kChunkTokens - 1) / kChunkTokens;
    const std::size_t dd = static_cast<std::size_t>(d);

    std::vector<float> qf(static_cast<std::size_t>(gq) * dd);
    kt->convert_rows(q.data(), qf.size(), qf.data());

    std::vector<SoftmaxPartial> parts(static_cast<std::size_t>(n_chunks));
    parallelFor(pool, static_cast<std::size_t>(n_chunks), [&](std::size_t ci) {
        SoftmaxPartial& st = parts[ci];
        st.init(gq, d);

        const int t0 = static_cast<int>(ci) * kChunkTokens;
        const int tokens = std::min(kChunkTokens, len - t0);
        thread_local std::vector<float> kT, vf, s;
        const std::size_t need = static_cast<std::size_t>(kChunkTokens) * dd;
        if (kT.size() < need) {
            kT.resize(need);
            vf.resize(need);
        }
        if (s.size() < static_cast<std::size_t>(kChunkTokens))
            s.resize(static_cast<std::size_t>(kChunkTokens));
        kt->convert_transpose(cache.keys().data() +
                                  static_cast<std::size_t>(t0) * dd,
                              tokens, d, kT.data(), tokens);
        kt->convert_rows(cache.values().data() +
                             static_cast<std::size_t>(t0) * dd,
                         static_cast<std::size_t>(tokens) * dd, vf.data());
        kt->fold_tile(qf.data(), gq, d, kT.data(), tokens, vf.data(), tokens,
                      scale, st.m.data(), st.l.data(), st.acc.data(),
                      s.data(), /*round_p=*/false);
    });

    return finalizePartial(mergePartials(parts, gq, d), gq, d);
}

} // namespace bitdec::exec::simd
