/**
 * @file
 * Fused FP16 attention kernels of the CPU execution backend.
 *
 * These are the serving-side hot paths: decode attention straight over the
 * paged KV pool (page-table indirection, no gather copies) and over a
 * contiguous FP16 cache. Pages/tiles convert to float in bulk through the
 * Half LUT into reusable thread-local scratch; KV chunks of a fixed size
 * process independently (optionally across the thread pool) and their
 * online-softmax partials merge sequentially in chunk order, so results
 * are bitwise identical for any thread count.
 */
#ifndef BITDEC_EXEC_FUSED_ATTENTION_H
#define BITDEC_EXEC_FUSED_ATTENTION_H

#include "common/half.h"
#include "common/tensor.h"
#include "exec/thread_pool.h"
#include "kvcache/kv_cache.h"
#include "kvcache/paged_cache.h"

namespace bitdec::exec {

/** Tokens per split chunk of the contiguous fused path; paged chunks are
 *  one page. Fixed so the merge order never depends on thread count. */
constexpr int kChunkTokens = 128;

/**
 * Per-row split-KV partial softmax state of one KV chunk: running max,
 * exp-sum and unnormalized [gq x d] output. Chunks fill these
 * independently; the caller merges them sequentially in chunk order.
 */
struct SoftmaxPartial
{
    std::vector<float> m;   //!< per-row running max
    std::vector<float> l;   //!< per-row exp-sum
    std::vector<float> acc; //!< [gq x d] unnormalized output

    /** Resets to the empty state (-inf max, zero sums). */
    void init(int gq, int d);
};

/**
 * Sequentially merges chunk partials in vector order (the split-KV
 * log-sum-exp combine). Deterministic for any thread count because the
 * order is the chunk order, never the completion order.
 */
SoftmaxPartial mergePartials(const std::vector<SoftmaxPartial>& parts, int gq,
                             int d);

/** Normalizes a merged partial into the [gq x d] attention output. */
Tensor<float> finalizePartial(const SoftmaxPartial& st, int gq, int d);

/**
 * Folds one float K/V tile of @p tokens rows into a partial state: scores
 * against every query row, online-softmax rescale, PV accumulation. The
 * single shared inner loop of every fused attention path.
 *
 * @param qf      [gq x d] float queries
 * @param kf, vf  [tokens x d] float K/V tile
 * @param round_p round P through half precision — the packed kernel's
 *                sAcc round trip; false for the FP16/paged paths
 */
void foldTile(const float* qf, int gq, int d, const float* kf,
              const float* vf, int tokens, float scale, SoftmaxPartial& st,
              bool round_p = false);

/**
 * Fused decode attention for one sequence of a paged cache, reading K/V
 * page-by-page in place (the paged kernels' dataflow — no
 * gatherKeys/gatherValues materialization).
 *
 * Matches attn::referenceAttention over the gathered sequence to ~1e-3
 * max-abs (fp32 accumulation order and split merges are the only
 * differences).
 *
 * @param q     [gq x d] queries
 * @param cache paged FP16 cache
 * @param seq   sequence id
 * @param scale logit scale
 * @param pool  optional pool to spread KV chunks over; null = serial
 */
Tensor<float> fusedPagedAttention(const Tensor<Half>& q,
                                  const kv::PagedHeadCache& cache, int seq,
                                  float scale, ThreadPool* pool = nullptr);

/**
 * Fused decode attention over a contiguous FP16 cache; same chunked
 * online-softmax pipeline as the paged variant.
 */
Tensor<float> fusedFp16Attention(const Tensor<Half>& q,
                                 const kv::Fp16HeadCache& cache, float scale,
                                 ThreadPool* pool = nullptr);

} // namespace bitdec::exec

#endif // BITDEC_EXEC_FUSED_ATTENTION_H
