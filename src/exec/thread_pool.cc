#include "exec/thread_pool.h"

#include <cstdlib>

#include "common/logging.h"

namespace bitdec::exec {

namespace {

int
resolveThreadCount(int requested)
{
    if (requested > 0)
        return requested;
    if (const char* env = std::getenv("BITDEC_THREADS")) {
        const int n = std::atoi(env);
        if (n > 0)
            return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

/** Pool whose task the current thread is executing (deadlock guard). */
thread_local const ThreadPool* t_current_pool = nullptr;

} // namespace

ThreadPool::ThreadPool(int threads) : num_threads_(resolveThreadCount(threads))
{
    queues_.reserve(static_cast<std::size_t>(num_threads_));
    for (int i = 0; i < num_threads_; i++)
        queues_.push_back(std::make_unique<Queue>());
    // Thread 0 is the caller's slot; spawn only the remaining workers.
    for (int i = 1; i < num_threads_; i++)
        workers_.emplace_back([this, i] {
            workerLoop(static_cast<std::size_t>(i));
        });
}

ThreadPool::~ThreadPool()
{
    stop_.store(true);
    {
        std::lock_guard<std::mutex> lk(wake_mutex_);
    }
    wake_cv_.notify_all();
    for (auto& w : workers_)
        w.join();
}

bool
ThreadPool::runOneTask(std::size_t self)
{
    const std::size_t n = queues_.size();
    for (std::size_t probe = 0; probe < n; probe++) {
        // Own queue first (front), then steal from siblings (back).
        const std::size_t qi = (self + probe) % n;
        Queue& q = *queues_[qi];
        std::function<void()> task;
        {
            std::lock_guard<std::mutex> lk(q.mutex);
            if (q.tasks.empty())
                continue;
            if (probe == 0) {
                task = std::move(q.tasks.front());
                q.tasks.pop_front();
            } else {
                task = std::move(q.tasks.back());
                q.tasks.pop_back();
            }
        }
        queued_.fetch_sub(1);
        const ThreadPool* prev = t_current_pool;
        t_current_pool = this;
        task();
        t_current_pool = prev;
        if (pending_.fetch_sub(1) == 1) {
            std::lock_guard<std::mutex> lk(done_mutex_);
            done_cv_.notify_all();
        }
        return true;
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    while (!stop_.load()) {
        if (runOneTask(self))
            continue;
        // Sleep until work is *queued* (not merely in flight): waking on
        // in-flight tasks would busy-spin idle workers for the duration of
        // the longest-running task.
        std::unique_lock<std::mutex> lk(wake_mutex_);
        wake_cv_.wait(lk, [this] {
            return stop_.load() || queued_.load() > 0;
        });
    }
}

void
ThreadPool::parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn)
{
    if (n == 0)
        return;
    // Nested parallelFor on the same pool would wait on a pending count
    // that includes the caller's own enclosing task — a silent deadlock.
    // Fail loudly instead; callers fan out at one level and pass null
    // pools to inner kernels.
    BITDEC_ASSERT(t_current_pool != this,
                  "nested parallelFor on the same ThreadPool");
    if (num_threads_ <= 1 || n == 1) {
        for (std::size_t i = 0; i < n; i++)
            fn(i);
        return;
    }

    pending_.fetch_add(static_cast<long>(n));
    queued_.fetch_add(static_cast<long>(n));
    for (std::size_t i = 0; i < n; i++) {
        const std::size_t qi =
            next_queue_.fetch_add(1) % queues_.size();
        Queue& q = *queues_[qi];
        std::lock_guard<std::mutex> lk(q.mutex);
        q.tasks.push_back([&fn, i] { fn(i); });
    }
    {
        std::lock_guard<std::mutex> lk(wake_mutex_);
    }
    wake_cv_.notify_all();

    // The caller works too (slot 0), then waits for stragglers.
    while (runOneTask(0)) {
    }
    std::unique_lock<std::mutex> lk(done_mutex_);
    done_cv_.wait(lk, [this] { return pending_.load() == 0; });
}

ThreadPool&
ThreadPool::global()
{
    static ThreadPool pool(0);
    return pool;
}

int
ThreadPool::globalThreadCount()
{
    return global().numThreads();
}

void
parallelFor(ThreadPool* pool, std::size_t n,
            const std::function<void(std::size_t)>& fn)
{
    if (pool == nullptr) {
        for (std::size_t i = 0; i < n; i++)
            fn(i);
        return;
    }
    pool->parallelFor(n, fn);
}

} // namespace bitdec::exec
