#include "exec/dequant_plan.h"

#include "common/logging.h"
#include "gpusim/fragment.h"

namespace bitdec::exec {

std::vector<CodeRoute>
buildDequantRoutes(const layout::InducedLayout& lay,
                   const std::function<std::uint32_t(int, int)>& dest_of,
                   const std::function<std::uint32_t(int, int)>& param_of)
{
    const int cpu = lay.codesPerUnit();
    std::vector<CodeRoute> routes(lay.numUnits() *
                                  static_cast<std::size_t>(cpu));
    for (int kt = 0; kt < lay.numKTiles(); kt++) {
        for (int ng = 0; ng < lay.numNGroups(); ng++) {
            for (int lane = 0; lane < sim::kWarpSize; lane++) {
                for (int pr = 0; pr < lay.pairsPerLane(); pr++) {
                    const layout::UnitId id{kt, ng, lane, pr};
                    const std::size_t base =
                        lay.unitSlot(id) * static_cast<std::size_t>(cpu);
                    for (int i = 0; i < cpu; i++) {
                        const layout::CodeCoord c = lay.codeCoord(id, i);
                        routes[base + static_cast<std::size_t>(i)] = {
                            dest_of(c.row, c.col), param_of(c.row, c.col)};
                    }
                }
            }
        }
    }
    return routes;
}

void
dequantBlock(const std::vector<std::uint32_t>& units,
             const std::vector<CodeRoute>& routes,
             const std::vector<Half>& lut, int bits, float* out)
{
    const int cpu = 32 / bits;
    const std::uint32_t mask = (1u << bits) - 1u;
    BITDEC_ASSERT(routes.size() ==
                      units.size() * static_cast<std::size_t>(cpu),
                  "routing table does not match the unit buffer");
    const float* widen = halfToFloatLut();
    const CodeRoute* r = routes.data();
    for (std::size_t u = 0; u < units.size(); u++, r += cpu) {
        const std::uint32_t w = units[u];
        for (int j = 0; j < cpu / 2; j++) {
            const std::uint32_t lo = (w >> (bits * j)) & mask;
            const std::uint32_t hi = (w >> (bits * j + 16)) & mask;
            const CodeRoute& rl = r[2 * j];
            const CodeRoute& rh = r[2 * j + 1];
            out[rl.dest] = widen[lut[(rl.param << bits) | lo].bits()];
            out[rh.dest] = widen[lut[(rh.param << bits) | hi].bits()];
        }
    }
}

} // namespace bitdec::exec
