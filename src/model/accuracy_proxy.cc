#include "model/accuracy_proxy.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "attention/reference.h"
#include "common/rng.h"
#include "common/tensor.h"
#include "quant/int_quant.h"

namespace bitdec::model {

namespace {

/** Query magnitude; with keys at kKeyScale the cue logit lands at 8. */
constexpr float kQueryScale = 16.0f;
constexpr float kKeyScale = 4.0f;

/** Normalizes a vector to unit length. */
void
normalize(std::vector<float>& v)
{
    float n = 0.f;
    for (float x : v)
        n += x * x;
    n = std::sqrt(std::max(n, 1e-12f));
    for (float& x : v)
        x /= n;
}

/** One retrieval task: context K/V, query, class codebook and answer. */
struct Task
{
    Tensor<Half> k;
    Tensor<Half> v;
    Tensor<Half> q;
    Tensor<float> embeddings; //!< [num_classes x d] dense class codebook
    int answer;
};

/**
 * Builds one task with a controlled retrieval margin: the strongest
 * distractor's logit sits @p margin below the cue's. Tasks near margin 0
 * sit on the decision boundary; KV-quantization noise perturbs logits by
 * a bit-width-dependent sigma and flips boundary tasks — the mechanism
 * behind LongBench degradation under low-bit caches.
 */
Task
makeTask(Rng& rng, const ProxyConfig& cfg, float margin)
{
    const int len = cfg.context_len;
    const int d = cfg.head_dim;

    Task task;
    task.k.reset({static_cast<std::size_t>(len), static_cast<std::size_t>(d)});
    task.v.reset({static_cast<std::size_t>(len), static_cast<std::size_t>(d)});
    task.q.reset({1, static_cast<std::size_t>(d)});

    std::vector<float> cue(static_cast<std::size_t>(d));
    for (auto& x : cue)
        x = rng.normal();
    normalize(cue);

    // Dense class codebook: values carry class identity as a direction,
    // so quantization noise degrades it smoothly (no lucky snapping of
    // one-hot patterns onto the quantization grid).
    task.embeddings.reset({static_cast<std::size_t>(cfg.num_classes),
                           static_cast<std::size_t>(d)});
    for (std::size_t i = 0; i < task.embeddings.numel(); i++)
        task.embeddings[i] = rng.normal();

    task.answer = static_cast<int>(
        rng.uniformInt(static_cast<std::uint64_t>(cfg.num_classes)));
    const int cue_pos =
        static_cast<int>(rng.uniformInt(static_cast<std::uint64_t>(len)));
    const int near_pos =
        (cue_pos + 1 +
         static_cast<int>(rng.uniformInt(static_cast<std::uint64_t>(len - 1)))) %
        len;

    // Cue logit = 0.125 * |q| * |k| = 8 (with d = 64). The strongest
    // distractor sits 'margin' below; the bulk sits far below.
    const float logit_scale = 0.125f * kQueryScale * kKeyScale;
    const float cos_near = 1.0f - margin / logit_scale;

    // Fixed outlier channels, as observed in real key caches (KIVI's
    // motivation). The query divides them back out, so FP16 logits are
    // unchanged; only quantization feels the inflated ranges.
    std::vector<bool> outlier_channel(static_cast<std::size_t>(d), false);
    for (int i = 0; i < 4; i++)
        outlier_channel[rng.uniformInt(static_cast<std::uint64_t>(d))] = true;

    for (int t = 0; t < len; t++) {
        std::vector<float> key(static_cast<std::size_t>(d));
        int cls;
        float cosine;
        if (t == cue_pos) {
            key = cue;
            cls = task.answer;
            cosine = 1.0f;
        } else {
            cosine = t == near_pos
                         ? std::min(cos_near, 0.999f)
                         : static_cast<float>(rng.uniform()) *
                               static_cast<float>(cfg.distractor_sim);
            std::vector<float> noise(static_cast<std::size_t>(d));
            for (auto& x : noise)
                x = rng.normal();
            // Project the cue direction out so the stated cosine is exact
            // (critical for outliers, whose logit must stay ~0).
            float proj = 0.f;
            for (int c = 0; c < d; c++)
                proj += noise[static_cast<std::size_t>(c)] *
                        cue[static_cast<std::size_t>(c)];
            for (int c = 0; c < d; c++)
                noise[static_cast<std::size_t>(c)] -=
                    proj * cue[static_cast<std::size_t>(c)];
            normalize(noise);
            const float b =
                std::sqrt(std::max(0.f, 1.f - cosine * cosine));
            for (int c = 0; c < d; c++)
                key[static_cast<std::size_t>(c)] =
                    cosine * cue[static_cast<std::size_t>(c)] +
                    b * noise[static_cast<std::size_t>(c)];
            normalize(key);
            cls = static_cast<int>(rng.uniformInt(
                static_cast<std::uint64_t>(cfg.num_classes)));
            if (cls == task.answer)
                cls = (cls + 1) % cfg.num_classes;
        }
        // Negative margins are realized by boosting the near distractor's
        // magnitude (its cosine saturates at 1).
        const float mag =
            t == near_pos && margin < 0.f ? 1.0f - margin / logit_scale
                                          : 1.0f;
        for (int c = 0; c < d; c++) {
            // Outlier channels (see below) carry much larger magnitudes,
            // as real key caches do: they inflate the quantization range
            // of every group they share — the mechanism that makes
            // low-bit caches lossy and channel-wise scaling worthwhile.
            const float ch_scale =
                outlier_channel[static_cast<std::size_t>(c)] ? 6.0f : 1.0f;
            task.k.at(static_cast<std::size_t>(t),
                      static_cast<std::size_t>(c)) =
                Half(key[static_cast<std::size_t>(c)] * kKeyScale * mag *
                     ch_scale);
        }
        // Value = class embedding plus per-token noise.
        for (int c = 0; c < d; c++) {
            task.v.at(static_cast<std::size_t>(t),
                      static_cast<std::size_t>(c)) =
                Half(task.embeddings.at(static_cast<std::size_t>(cls),
                                        static_cast<std::size_t>(c)) +
                     0.25f * rng.normal());
        }
    }
    for (int c = 0; c < d; c++) {
        const float ch_scale =
            outlier_channel[static_cast<std::size_t>(c)] ? 6.0f : 1.0f;
        task.q.at(0, static_cast<std::size_t>(c)) =
            Half(cue[static_cast<std::size_t>(c)] * kQueryScale / ch_scale);
    }
    return task;
}

/** Classifies an attention output row by nearest class embedding. */
int
classify(const Tensor<float>& out, const Tensor<float>& embeddings)
{
    int best = 0;
    float best_score = -1e30f;
    for (std::size_t cls = 0; cls < embeddings.dim(0); cls++) {
        float s = 0.f;
        for (std::size_t c = 0; c < embeddings.dim(1); c++)
            s += out.at(0, c) * embeddings.at(cls, c);
        if (s > best_score) {
            best_score = s;
            best = static_cast<int>(cls);
        }
    }
    return best;
}

double
runProxy(const ProxyConfig& cfg, const quant::QuantConfig* qc)
{
    Rng rng(cfg.seed);
    const float scale = 1.0f / std::sqrt(static_cast<float>(cfg.head_dim));
    int correct = 0;
    for (int i = 0; i < cfg.num_tasks; i++) {
        // Difficulty mix: boundary tasks plus a hard tail that keeps the
        // FP16 score in LongBench's mid-range regime.
        const bool hard = rng.uniform() < cfg.hard_fraction;
        // Solvable tasks sit modestly above the decision threshold (the
        // trained-model regime), so logit noise mostly costs accuracy;
        // hard tasks sit safely below it.
        const float margin = hard ? rng.normal(-3.0f, 0.6f)
                                  : rng.normal(1.6f, 0.5f);
        const Task task = makeTask(rng, cfg, margin);

        Tensor<Half> k = task.k;
        Tensor<Half> v = task.v;
        if (qc) {
            const quant::QuantizedMatrix kq = quant::quantizeMatrix(
                task.k, qc->bits, qc->key_granularity, qc->group_size);
            const quant::QuantizedMatrix vq = quant::quantizeMatrix(
                task.v, qc->bits, quant::Granularity::TensorWise,
                qc->group_size);
            k = quant::dequantizeMatrix(kq);
            v = quant::dequantizeMatrix(vq);
        }
        const Tensor<float> out =
            attn::referenceAttention(task.q, k, v, scale);
        if (classify(out, task.embeddings) == task.answer)
            correct++;
    }
    return 100.0 * correct / cfg.num_tasks;
}

} // namespace

ProxyResult
proxyScoreFp16(const ProxyConfig& cfg)
{
    return {runProxy(cfg, nullptr)};
}

ProxyResult
proxyScoreQuantized(const ProxyConfig& cfg, const quant::QuantConfig& qc)
{
    return {runProxy(cfg, &qc)};
}

} // namespace bitdec::model
