/**
 * @file
 * End-to-end decode simulation: per-token latency, memory footprint with
 * OOM detection, and serving throughput for each inference system.
 */
#ifndef BITDEC_MODEL_DECODE_SIM_H
#define BITDEC_MODEL_DECODE_SIM_H

#include "attention/workloads.h"
#include "core/bitdecoding.h"
#include "gpusim/arch.h"
#include "model/model_config.h"

namespace bitdec::model {

/** Inference system under simulation. */
enum class SystemKind
{
    FlashDecodingFp16, //!< FP16 KV, FlashDecoding-v2 kernels
    Kivi,              //!< non-fused low-bit kernels
    QServe,            //!< fused CUDA-core low-bit kernels (W4A8KV4)
    BitDecoding,       //!< this work
};

/** Returns a printable system name. */
const char* toString(SystemKind kind);

/** End-to-end configuration of one run. */
struct E2EConfig
{
    SystemKind system = SystemKind::BitDecoding;
    int bits = 4;               //!< KV bit width (low-bit systems)
    quant::Granularity key_granularity = quant::Granularity::ChannelWise;
    int tensor_parallel = 1;    //!< GPUs sharding the model
    attn::Scenario scenario = attn::Scenario::Batches;
    int page_size = 64;         //!< tokens per KV page in paged scenarios
};

/** Per-token decode-step timing breakdown. */
struct StepTiming
{
    double attention_s = 0; //!< all layers' attention kernels
    double gemm_s = 0;      //!< projection + FFN GEMMs
    double other_s = 0;     //!< norms, embeddings, launch misc
    double total_s = 0;
};

/** Computes one decode step's latency for a full batch. */
StepTiming decodeStepTime(const sim::GpuArch& arch, const ModelConfig& model,
                          int seq_len, int batch, const E2EConfig& cfg);

/**
 * Device bytes everything except the KV cache and per-shape workspaces
 * occupies (per GPU): weights, activation high-water mark at @p batch, and
 * allocator/framework overhead. peakMemoryBytes() and the serving page-pool
 * sizing share this budget model.
 */
double nonKvMemoryBytes(const ModelConfig& model, int batch,
                        const E2EConfig& cfg);

/**
 * Peak device memory of a run (per GPU): weights + KV cache + transient
 * workspaces + activations. Used for OOM detection and max-batch search.
 */
double peakMemoryBytes(const ModelConfig& model, int seq_len, int batch,
                       const E2EConfig& cfg);

/** Result of a throughput evaluation. */
struct ThroughputResult
{
    bool oom = false;        //!< configuration does not fit
    int batch = 0;           //!< batch size used
    double tokens_per_s = 0; //!< decode throughput
    double step_latency_s = 0;
};

/**
 * Decode throughput at a fixed batch size; oom set when the memory model
 * says the configuration does not fit on the device.
 */
ThroughputResult decodeThroughput(const sim::GpuArch& arch,
                                  const ModelConfig& model, int seq_len,
                                  int batch, const E2EConfig& cfg);

/**
 * Serving throughput at the largest batch that fits in device memory
 * (the paper's Pages evaluation protocol).
 */
ThroughputResult maxBatchThroughput(const sim::GpuArch& arch,
                                    const ModelConfig& model, int seq_len,
                                    const E2EConfig& cfg, int batch_limit = 256);

/**
 * One (sequence, head) work item of a functional batched decode step:
 * a query tile against that head's packed cache.
 */
struct FusedDecodeItem
{
    const Tensor<Half>* q;            //!< [gq x d] query tile
    const kv::PackedHeadCache* cache; //!< the (sequence, head) KV
};

/**
 * Runs the `fused-packed` attention backend (resolved through the
 * BackendRegistry) for every (sequence, head) item, spread across the
 * thread pool. Each output slot is produced by exactly one task (a
 * single-item batch instead hands the pool to the kernel's KV chunks,
 * which are themselves thread-count invariant), so the result vector is
 * bitwise identical for any thread count.
 *
 * @param items (sequence, head) tiles; pointers must stay valid
 * @param scale logit scale
 * @param pool  optional pool; null runs the batch inline
 */
std::vector<Tensor<float>> batchedFusedDecode(
    const std::vector<FusedDecodeItem>& items, float scale,
    exec::ThreadPool* pool = nullptr);

} // namespace bitdec::model

#endif // BITDEC_MODEL_DECODE_SIM_H
