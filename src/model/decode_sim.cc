#include "model/decode_sim.h"

#include <algorithm>

#include "attention/flash_decoding.h"
#include "attention/kivi_baseline.h"
#include "attention/qserve_baseline.h"
#include "backend/registry.h"
#include "common/logging.h"

namespace bitdec::model {

const char*
toString(SystemKind kind)
{
    switch (kind) {
      case SystemKind::FlashDecodingFp16:
        return "FlashDecoding-v2";
      case SystemKind::Kivi:
        return "KIVI";
      case SystemKind::QServe:
        return "QServe";
      case SystemKind::BitDecoding:
        return "BitDecoding";
    }
    return "unknown";
}

namespace {

/** Attention shape of one layer under tensor parallelism. */
attn::DecodeShape
layerShape(const ModelConfig& model, int seq_len, int batch,
           const E2EConfig& cfg)
{
    attn::DecodeShape s;
    s.batch = batch;
    s.num_q_heads = std::max(1, model.num_q_heads / cfg.tensor_parallel);
    s.num_kv_heads = std::max(1, model.num_kv_heads / cfg.tensor_parallel);
    s.head_dim = model.head_dim;
    s.seq_len = seq_len;
    s.scenario = cfg.scenario;
    s.page_size = cfg.page_size;
    return s;
}

/** Quantization config a system uses end to end. */
quant::QuantConfig
quantOf(const E2EConfig& cfg)
{
    quant::QuantConfig q;
    q.bits = cfg.bits;
    q.key_granularity = cfg.key_granularity;
    q.group_size = 32;
    return q;
}

} // namespace

StepTiming
decodeStepTime(const sim::GpuArch& arch, const ModelConfig& model, int seq_len,
               int batch, const E2EConfig& cfg)
{
    const attn::DecodeShape shape = layerShape(model, seq_len, batch, cfg);

    sim::SequenceTiming attn_t;
    switch (cfg.system) {
      case SystemKind::FlashDecodingFp16:
        attn_t = attn::flashDecodingTime(arch, shape, 2);
        break;
      case SystemKind::Kivi: {
        attn::DecodeShape s = shape;
        if (attn::isPaged(s.scenario))
            s.scenario = attn::Scenario::Batches; // KIVI has no paging
        attn_t = attn::kiviTime(arch, s, cfg.bits);
        break;
      }
      case SystemKind::QServe:
        attn_t = attn::cudaCoreFusedTime(arch, shape,
                                         attn::CudaCoreSystem::QServe,
                                         cfg.bits);
        break;
      case SystemKind::BitDecoding: {
        core::BitDecodingConfig bc;
        bc.quant = quantOf(cfg);
        bc.version = arch.has_wgmma ? 3 : 2;
        bc.use_mx = arch.has_mxfp4_mma;
        attn_t = core::bitDecodingTime(arch, shape, bc);
        break;
      }
    }

    StepTiming t;
    t.attention_s = attn_t.total_s * model.layers;

    // Projection/FFN GEMMs: weights stream once per step (batch rows of
    // activations ride along); QServe's W4A8 halves the weight traffic
    // twice over FP16.
    const double weight_bytes =
        model.weightBytesFp16() / cfg.tensor_parallel *
        (cfg.system == SystemKind::QServe ? 0.25 : 1.0);
    const double gemm_flops =
        model.gemmFlopsPerToken() * batch / cfg.tensor_parallel;
    const double t_weights = weight_bytes / arch.dramBytesPerSec();
    const double t_flops = gemm_flops / arch.tcFlops(16);
    t.gemm_s = std::max(t_weights, t_flops);

    // Norms/residuals/embedding lookups and framework overhead.
    t.other_s = model.layers * 2.0 * arch.launch_overhead_us * 1e-6;

    t.total_s = t.attention_s + t.gemm_s + t.other_s;
    return t;
}

double
nonKvMemoryBytes(const ModelConfig& model, int batch, const E2EConfig& cfg)
{
    const double weights =
        model.weightBytesFp16() / cfg.tensor_parallel *
        (cfg.system == SystemKind::QServe ? 0.25 : 1.0);
    // Activations, allocator slack and framework overhead.
    const double activations =
        2.0 * batch * (model.hidden + model.intermediate) * model.layers * 2.0;
    const double overhead = 1.5e9;
    return weights + activations + overhead;
}

double
peakMemoryBytes(const ModelConfig& model, int seq_len, int batch,
                const E2EConfig& cfg)
{
    double kv = model.kvBytesFp16(seq_len) * batch / cfg.tensor_parallel;
    if (cfg.system != SystemKind::FlashDecodingFp16)
        kv *= static_cast<double>(cfg.bits) / 16.0;

    double workspace = 0;
    if (cfg.system == SystemKind::Kivi) {
        const attn::DecodeShape shape = layerShape(model, seq_len, batch, cfg);
        workspace = attn::kiviWorkspaceBytes(shape, model.layers);
    }

    return nonKvMemoryBytes(model, batch, cfg) + kv + workspace;
}

ThroughputResult
decodeThroughput(const sim::GpuArch& arch, const ModelConfig& model,
                 int seq_len, int batch, const E2EConfig& cfg)
{
    ThroughputResult r;
    r.batch = batch;
    if (peakMemoryBytes(model, seq_len, batch, cfg) > arch.hbm_gb * 1e9) {
        r.oom = true;
        return r;
    }
    const StepTiming t = decodeStepTime(arch, model, seq_len, batch, cfg);
    r.step_latency_s = t.total_s;
    r.tokens_per_s = batch / t.total_s;
    return r;
}

std::vector<Tensor<float>>
batchedFusedDecode(const std::vector<FusedDecodeItem>& items, float scale,
                   exec::ThreadPool* pool)
{
    backend::AttentionBackend& be =
        backend::BackendRegistry::instance().resolve("fused-packed");
    backend::DecodeBatch batch;
    batch.scale = scale;
    batch.pool = pool;
    batch.items.reserve(items.size());
    for (const FusedDecodeItem& it : items)
        batch.items.push_back(backend::packedItem(*it.q, *it.cache));
    return be.decodeStep(batch);
}

ThroughputResult
maxBatchThroughput(const sim::GpuArch& arch, const ModelConfig& model,
                   int seq_len, const E2EConfig& cfg, int batch_limit)
{
    ThroughputResult best;
    best.oom = true;
    for (int b = 1; b <= batch_limit; b++) {
        if (peakMemoryBytes(model, seq_len, b, cfg) > arch.hbm_gb * 1e9)
            break;
        const ThroughputResult r =
            decodeThroughput(arch, model, seq_len, b, cfg);
        if (!r.oom && r.tokens_per_s > best.tokens_per_s) {
            best = r;
            best.oom = false;
        }
    }
    return best;
}

} // namespace bitdec::model
