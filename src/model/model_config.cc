#include "model/model_config.h"

#include "common/logging.h"

namespace bitdec::model {

double
ModelConfig::kvBytesFp16(int len) const
{
    return 2.0 * layers * num_kv_heads * head_dim * static_cast<double>(len) *
           2.0;
}

double
ModelConfig::gemmFlopsPerToken() const
{
    // QKVO projections + gated FFN (3 matrices) per layer, 2 FLOPs/MAC.
    const double qkvo = 2.0 * hidden *
                        (hidden + 2.0 * num_kv_heads * head_dim + hidden);
    const double ffn = 2.0 * 3.0 * hidden * static_cast<double>(intermediate);
    return layers * (qkvo + ffn) + 2.0 * hidden * vocab;
}

namespace {

ModelConfig
make(const std::string& name, int layers, int hq, int hkv, int d, int hidden,
     int inter, int vocab, double params)
{
    ModelConfig m;
    m.name = name;
    m.layers = layers;
    m.num_q_heads = hq;
    m.num_kv_heads = hkv;
    m.head_dim = d;
    m.hidden = hidden;
    m.intermediate = inter;
    m.vocab = vocab;
    m.params = params;
    return m;
}

} // namespace

const ModelConfig&
llama2_7b()
{
    static const ModelConfig m =
        make("llama-2-7B", 32, 32, 32, 128, 4096, 11008, 32000, 6.74e9);
    return m;
}

const ModelConfig&
llama31_8b()
{
    static const ModelConfig m =
        make("llama-3.1-8B", 32, 32, 8, 128, 4096, 14336, 128256, 8.03e9);
    return m;
}

const ModelConfig&
llama31_70b()
{
    static const ModelConfig m =
        make("llama-3.1-70B", 80, 64, 8, 128, 8192, 28672, 128256, 70.6e9);
    return m;
}

const ModelConfig&
qwen3_8b()
{
    static const ModelConfig m =
        make("Qwen3-8B", 36, 32, 8, 128, 4096, 12288, 151936, 8.19e9);
    return m;
}

const ModelConfig&
qwen3_14b()
{
    static const ModelConfig m =
        make("Qwen3-14B", 40, 40, 8, 128, 5120, 17408, 151936, 14.8e9);
    return m;
}

const ModelConfig&
modelByName(const std::string& name)
{
    if (name == "llama-2-7B")
        return llama2_7b();
    if (name == "llama-3.1-8B")
        return llama31_8b();
    if (name == "llama-3.1-70B")
        return llama31_70b();
    if (name == "Qwen3-8B")
        return qwen3_8b();
    if (name == "Qwen3-14B")
        return qwen3_14b();
    BITDEC_FATAL("unknown model: ", name);
}

} // namespace bitdec::model
