/**
 * @file
 * Synthetic long-context accuracy proxy standing in for LongBench.
 *
 * The paper's Table I reports LongBench average accuracy on
 * LLaMA-3.1-8B-Instruct under FP16/INT4/INT2 KV caches. Running the real
 * model is out of scope here, so we measure the same cause directly: KV
 * quantization perturbs attention logits and the values attention mixes,
 * which degrades a model's ability to retrieve the right context.
 *
 * The proxy is a planted-association retrieval benchmark: each task hides
 * one cue->class association in a long synthetic context with near-
 * duplicate distractors; a scorer attends with a query correlated to the
 * cue and classifies from the attention output. The KV cache runs through
 * the *same* quantization pipeline as the kernels (grouped asymmetric INT
 * quantization with half2 parameters), so measured degradation is caused
 * by exactly the arithmetic the system deploys. A difficulty mix keeps
 * FP16 in LongBench's ~48-point regime.
 */
#ifndef BITDEC_MODEL_ACCURACY_PROXY_H
#define BITDEC_MODEL_ACCURACY_PROXY_H

#include <cstdint>

#include "quant/quant_params.h"

namespace bitdec::model {

/** Configuration of the retrieval proxy benchmark. */
struct ProxyConfig
{
    int num_tasks = 400;     //!< tasks to score
    int context_len = 96;    //!< tokens per haystack
    int head_dim = 64;       //!< key/query width
    int num_classes = 8;     //!< classification arity
    double distractor_sim = 0.3;  //!< bulk distractor max cosine
    double hard_fraction = 0.52;  //!< fraction of near-unsolvable tasks
    std::uint64_t seed = 2026;
};

/** One evaluated setting's score. */
struct ProxyResult
{
    double accuracy = 0; //!< percent correct, 0..100
};

/**
 * Scores the proxy benchmark with an FP16 KV cache (the reference row).
 */
ProxyResult proxyScoreFp16(const ProxyConfig& cfg);

/**
 * Scores the proxy benchmark with the KV cache quantized through the
 * library's pipeline.
 */
ProxyResult proxyScoreQuantized(const ProxyConfig& cfg,
                                const quant::QuantConfig& qc);

} // namespace bitdec::model

#endif // BITDEC_MODEL_ACCURACY_PROXY_H
