/**
 * @file
 * Shape configurations of the LLMs the paper evaluates end-to-end.
 * Only tensor shapes matter for latency/throughput simulation; no weights
 * are involved.
 */
#ifndef BITDEC_MODEL_MODEL_CONFIG_H
#define BITDEC_MODEL_MODEL_CONFIG_H

#include <string>

namespace bitdec::model {

/** Transformer shape parameters of one model. */
struct ModelConfig
{
    std::string name;
    int layers;
    int num_q_heads;
    int num_kv_heads;
    int head_dim;
    int hidden;       //!< model width (= num_q_heads * head_dim here)
    int intermediate; //!< FFN width
    int vocab;
    double params;    //!< total parameter count

    /** True for multi-head attention (no KV sharing). */
    bool isMha() const { return num_q_heads == num_kv_heads; }

    /** FP16 bytes of all weights. */
    double weightBytesFp16() const { return params * 2.0; }

    /** FP16 KV-cache bytes for one sequence of @p len tokens. */
    double kvBytesFp16(int len) const;

    /** Per-token FLOPs of the non-attention GEMMs (decode step). */
    double gemmFlopsPerToken() const;
};

/** LLaMA-2-7B (MHA). */
const ModelConfig& llama2_7b();

/** LLaMA-3.1-8B (GQA 4:1). */
const ModelConfig& llama31_8b();

/** LLaMA-3.1-70B (GQA 8:1). */
const ModelConfig& llama31_70b();

/** Qwen3-8B (GQA 4:1). */
const ModelConfig& qwen3_8b();

/** Qwen3-14B (GQA 5:1). */
const ModelConfig& qwen3_14b();

/** Looks a model up by name; fatal on unknown names. */
const ModelConfig& modelByName(const std::string& name);

} // namespace bitdec::model

#endif // BITDEC_MODEL_MODEL_CONFIG_H
